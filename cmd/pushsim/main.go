// Command pushsim runs one simulation and prints its results: execution
// time, MPKI, traffic breakdown, and push statistics.
//
// Usage:
//
//	pushsim -workload cachebw -scheme OrdPush -cores 16 -scale quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pushmulticast"
	"pushmulticast/internal/profiles"
	"pushmulticast/internal/stats"
)

func main() {
	var (
		wlName   = flag.String("workload", "cachebw", "workload name (see -list)")
		sharers  = flag.Int("sharers", 0, "collective workloads: participating core count (0 = all cores)")
		fanout   = flag.Int("fanout", 0, "collective workloads: broadcast tree radix / prodcons consumers per producer / allreduce ring channels (0 = workload default)")
		chunk    = flag.Int("chunk", 0, "collective workloads: chunk granularity in cache lines (0 = default 16)")
		payload  = flag.Int("payload", 0, "collective workloads: payload size in cache lines; must be chunk- and sharer-divisible (0 = scale-derived default)")
		iters    = flag.Int("iters", 0, "collective workloads: collective repetitions (0 = scale default)")
		scheme   = flag.String("scheme", "OrdPush", "scheme: Baseline|NoPrefetch|Coalesce|MSP|PushAck|OrdPush|Push|Push+Multicast|Push+Multicast+Filter")
		cores    = flag.Int("cores", 16, "core count: 16, 64, or 256")
		scale    = flag.String("scale", "quick", "input scale: tiny|quick|full")
		linkBits = flag.Int("link", 128, "link width in bits: 64|128|256|512")
		list     = flag.Bool("list", false, "list workloads and exit")
		jsonOut  = flag.Bool("json", false, "emit results as JSON")
		dense    = flag.Bool("dense", false, "run on the dense reference kernel (tick every component every cycle; the wake-driven scheduler's equivalence oracle)")
		parallel = flag.Int("parallel", 0, "parallel tick executor worker count (0 or 1 = serial kernel; results are byte-identical either way)")
		chk      = flag.Bool("check", false, "enable the runtime invariant checker (coherence, directory superset, inclusion, filter soundness, OrdPush ordering, VC conservation); violations abort with a trace dump")
		traceN   = flag.Int("trace", 0, "retain the last N trace events and dump them on a checker violation, deadlock, or panic (0 = off unless -check, which keeps a default tail)")
		faults   = flag.Float64("faults", 0, "fault-injection intensity in [0,1]: generates a deterministic fault plan (link stalls, router slowdowns, VC jitter, injection spikes, filter drops); 0 = off")
		faultSee = flag.Uint64("faultseed", 1, "seed for the generated fault plan (same seed + intensity = byte-identical fault schedule)")
		lossy    = flag.Int("lossy", 0, "lossy-interconnect rate in per mille: every tile drops arrivals at this rate and duplicates/corrupts them at half of it; recovered end-to-end by the transport layer (0 = off; rates above 100 are outside the forward-progress contract)")
		planFile = flag.String("faultplan", "", "JSON fault-plan file to run (exclusive with -faults/-lossy); validated against the machine before the run starts")
		retryWin = flag.Int("retrywindow", 0, "lossy recovery: unacked packets per sender stream before injection backpressure (0 = default 32)")
		retryTO  = flag.Int("retrytimeout", 0, "lossy recovery: cycles before a sender retransmits an unacked packet (0 = default 400)")
		maxRetry = flag.Int("maxretries", 0, "lossy recovery: retransmissions per packet before the run aborts with ErrUnrecoverable (0 = default 16)")
		mshrTO   = flag.Int("mshrtimeout", 0, "lossy recovery: cycles before an L2 MSHR reissues an unanswered request (0 = default 300)")
		snapFile = flag.String("snapshot", "", "write a full-state snapshot to FILE at the -snapat cycle barrier, then continue the run to completion (output is byte-identical to a run that never snapshotted)")
		snapAt   = flag.Uint64("snapat", 0, "cycle barrier for -snapshot (required with it; the wake-driven kernel may pause a little later if every component sleeps across the barrier)")
		snapEv   = flag.Int64("snapevery", 0, "auto-checkpoint: rewrite the -snapshot FILE every N cycles (atomic rename-into-place, never a torn file); combine with -restore to resume a killed run and keep checkpointing (0 = off; exclusive with -snapat)")
		restoreF = flag.String("restore", "", "restore a snapshot FILE into this configuration and run it to completion; the config must match the snapshot exactly, or differ only in tuning knobs (warm-start fork)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
		memProf  = flag.String("memprofile", "", "write an allocation (heap) profile to FILE at exit")
		execTr   = flag.String("exectrace", "", "write a runtime execution trace of the run to FILE")
	)
	flag.Parse()
	stopProf, err := profiles.Start(*cpuProf, *memProf, *execTr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, w := range pushmulticast.Workloads() {
			fmt.Printf("%-16s %-14s %s\n", w.Name, "["+w.Class+"]", w.Description)
		}
		for _, w := range pushmulticast.CollectiveWorkloads() {
			fmt.Printf("%-16s %-14s %s\n", w.Name, "["+w.Class+"]", w.Description)
		}
		return
	}

	cfg, err := buildConfig(*cores, *scheme, *scale, *linkBits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	cfg.DenseKernel = *dense
	cfg.ParallelWorkers = *parallel
	cfg.Check = *chk
	cfg.TraceN = *traceN
	// Zero keeps the config's default for each recovery knob.
	if *retryWin != 0 {
		cfg.NoC.RetryWindow = *retryWin
	}
	if *retryTO != 0 {
		cfg.NoC.RetryTimeout = *retryTO
	}
	if *maxRetry != 0 {
		cfg.NoC.MaxRetries = *maxRetry
	}
	if *mshrTO != 0 {
		cfg.MSHRRetryTimeout = *mshrTO
	}
	plan, err := buildFaultPlan(cfg.Tiles(), *planFile, *faults, *lossy, *faultSee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	cfg.Faults = plan
	sc, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	wl, err := resolveWorkload(*wlName, pushmulticast.CollectiveParams{
		Sharers: *sharers, Fanout: *fanout, ChunkLines: *chunk, PayloadLines: *payload, Iters: *iters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	snapEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "snapevery" {
			snapEverySet = true
		}
	})
	if err := checkSnapEvery(snapEverySet, *snapEv); err != nil {
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	res, err := execute(cfg, wl, sc, *snapFile, *snapAt, uint64(*snapEv), *restoreF)
	if err != nil {
		stopProf() // flush profiles of the failed run before exiting
		fmt.Fprintln(os.Stderr, "pushsim:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := reportJSON(res); err != nil {
			fmt.Fprintln(os.Stderr, "pushsim:", err)
			os.Exit(1)
		}
		return
	}
	report(res)
}

// resolveWorkload maps the -workload name (plus the collective parameter
// flags) to a workload value. A zero CollectiveParams means no collective
// flag was set, so plain registry names resolve unchanged; any set flag
// requires the name to be a collective. Errors are one-line diagnostics.
func resolveWorkload(name string, p pushmulticast.CollectiveParams) (pushmulticast.Workload, error) {
	if p == (pushmulticast.CollectiveParams{}) {
		return pushmulticast.WorkloadByName(name)
	}
	wl, err := pushmulticast.CollectiveWorkload(name, p)
	if err != nil {
		return pushmulticast.Workload{}, fmt.Errorf("collective flags (-sharers/-fanout/-chunk/-payload/-iters) set: %v", err)
	}
	return wl, nil
}

// checkSnapEvery validates the -snapevery flag value: the flag must be a
// positive cycle count whenever it was set at all.
func checkSnapEvery(set bool, n int64) error {
	if set && n <= 0 {
		return fmt.Errorf("-snapevery %d is not a positive cycle count", n)
	}
	return nil
}

// execute runs the simulation, honoring the checkpoint/restore flags. Plain
// runs take the one-shot path; -snapshot pauses at the -snapat barrier,
// writes the serialized machine, and continues to completion; -snapevery
// instead rewrites the snapshot file every N cycles (atomically, so a crash
// never leaves a torn file) until the workload retires; -restore loads a
// snapshot into the configured machine and finishes it — combined with
// -snapevery it resumes a killed run and keeps checkpointing. Every failure —
// including a snapshot whose format version or config fingerprint does not
// match, or collective parameters inconsistent with the machine's core
// count — is a one-line diagnostic; the caller prints it and exits 1.
func execute(cfg pushmulticast.Config, wl pushmulticast.Workload, sc pushmulticast.Scale, snapFile string, snapAt, snapEvery uint64, restoreF string) (pushmulticast.Results, error) {
	if snapEvery > 0 {
		if snapFile == "" {
			return pushmulticast.Results{}, fmt.Errorf("-snapevery requires -snapshot FILE")
		}
		if snapAt != 0 {
			return pushmulticast.Results{}, fmt.Errorf("-snapevery cannot be combined with -snapat (periodic versus one-shot)")
		}
		return executeCheckpointed(cfg, wl, sc, snapFile, snapEvery, restoreF)
	}
	if snapFile == "" && restoreF == "" {
		return pushmulticast.RunWorkload(cfg, wl, sc)
	}
	if snapFile != "" && restoreF != "" {
		return pushmulticast.Results{}, fmt.Errorf("-snapshot cannot be combined with -restore")
	}
	if restoreF != "" {
		data, err := os.ReadFile(restoreF)
		if err != nil {
			return pushmulticast.Results{}, fmt.Errorf("restore: %w", err)
		}
		m, err := pushmulticast.RestoreMachine(data, cfg, wl, sc)
		if err != nil {
			return pushmulticast.Results{}, fmt.Errorf("restore %s: %w", restoreF, err)
		}
		return m.Finish()
	}
	if snapAt == 0 {
		return pushmulticast.Results{}, fmt.Errorf("-snapshot requires -snapat CYCLE")
	}
	m, err := pushmulticast.NewMachine(cfg, wl, sc)
	if err != nil {
		return pushmulticast.Results{}, err
	}
	if err := m.RunTo(snapAt); err != nil {
		return pushmulticast.Results{}, err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return pushmulticast.Results{}, err
	}
	if err := writeFileAtomic(snapFile, snap); err != nil {
		return pushmulticast.Results{}, fmt.Errorf("snapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pushsim: snapshot written to %s (cycle %d, %d bytes, hash %#x)\n",
		snapFile, m.Now(), len(snap), pushmulticast.SnapshotHash(snap))
	return m.Finish()
}

// executeCheckpointed runs the workload in -snapevery slices, rewriting the
// snapshot file at each boundary. The final results are byte-identical to an
// uncheckpointed run (pausing is state-transparent), and the file on disk is
// always a complete snapshot of some barrier — a SIGKILL at any instant
// loses at most one slice of progress, which -restore -snapevery resumes.
func executeCheckpointed(cfg pushmulticast.Config, wl pushmulticast.Workload, sc pushmulticast.Scale, snapFile string, every uint64, restoreF string) (pushmulticast.Results, error) {
	var m *pushmulticast.Machine
	var err error
	if restoreF != "" {
		data, rerr := os.ReadFile(restoreF)
		if rerr != nil {
			return pushmulticast.Results{}, fmt.Errorf("restore: %w", rerr)
		}
		if m, err = pushmulticast.RestoreMachine(data, cfg, wl, sc); err != nil {
			return pushmulticast.Results{}, fmt.Errorf("restore %s: %w", restoreF, err)
		}
		fmt.Fprintf(os.Stderr, "pushsim: resumed from %s at cycle %d; checkpointing every %d cycles\n", restoreF, m.Now(), every)
	} else if m, err = pushmulticast.NewMachine(cfg, wl, sc); err != nil {
		return pushmulticast.Results{}, err
	}
	checkpoints := 0
	for !m.Done() {
		if err := m.RunTo(m.Now() + every); err != nil {
			return pushmulticast.Results{}, err
		}
		if m.Done() {
			break // the workload retired inside the slice; skip a dead checkpoint
		}
		snap, err := m.Snapshot()
		if err != nil {
			return pushmulticast.Results{}, err
		}
		if err := writeFileAtomic(snapFile, snap); err != nil {
			return pushmulticast.Results{}, fmt.Errorf("checkpoint: %w", err)
		}
		checkpoints++
	}
	fmt.Fprintf(os.Stderr, "pushsim: %d checkpoints written to %s (last at cycle %d)\n", checkpoints, snapFile, m.Now())
	return m.Finish()
}

// writeFileAtomic writes data next to path and renames it into place, so a
// crash mid-write can never leave a torn file at path: readers see either
// the previous complete snapshot or the new one.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// buildFaultPlan resolves the three fault sources into one plan: a JSON plan
// file (exclusive with the generators, since merging could stack windows on
// one component), or a generated chaos plan, a generated lossy plan, or both
// (the chaos generator never emits lossy kinds, so the merge cannot overlap).
// A nil return with nil error means injection is off. Every error is a
// one-line diagnostic; the caller prints it and exits non-zero.
func buildFaultPlan(tiles int, planFile string, intensity float64, lossyRate int, seed uint64) (*pushmulticast.FaultPlan, error) {
	if planFile != "" {
		if intensity > 0 || lossyRate > 0 {
			return nil, fmt.Errorf("-faultplan cannot be combined with -faults or -lossy")
		}
		data, err := os.ReadFile(planFile)
		if err != nil {
			return nil, fmt.Errorf("fault plan: %w", err)
		}
		var plan pushmulticast.FaultPlan
		if err := json.Unmarshal(data, &plan); err != nil {
			return nil, fmt.Errorf("fault plan %s: %v", planFile, err)
		}
		if err := plan.Validate(tiles); err != nil {
			return nil, fmt.Errorf("fault plan %s: %v", planFile, err)
		}
		return &plan, nil
	}
	var plan pushmulticast.FaultPlan
	if intensity > 0 {
		plan = pushmulticast.GenerateFaultPlan(tiles, seed, intensity)
	}
	if lossyRate > 0 {
		lp := pushmulticast.GenerateLossyPlan(tiles, seed, lossyRate)
		plan.Seed = lp.Seed
		plan.Faults = append(plan.Faults, lp.Faults...)
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return &plan, nil
}

// jsonResult is the machine-readable result schema.
type jsonResult struct {
	Workload     string            `json:"workload"`
	Scheme       string            `json:"scheme"`
	Cycles       uint64            `json:"cycles"`
	Instructions uint64            `json:"instructions"`
	IPC          float64           `json:"ipc"`
	L1MPKI       float64           `json:"l1_mpki"`
	L2MPKI       float64           `json:"l2_mpki"`
	NoCFlits     uint64            `json:"noc_flits"`
	FlitsByClass map[string]uint64 `json:"flits_by_class"`
	Pushes       uint64            `json:"pushes_triggered"`
	PushAvgDests float64           `json:"push_avg_dests"`
	PushOutcomes map[string]uint64 `json:"push_outcomes"`
	FilteredReqs uint64            `json:"filtered_requests"`
	Coalesced    uint64            `json:"coalesced_requests"`
	MemReads     uint64            `json:"mem_reads"`
	MemWrites    uint64            `json:"mem_writes"`
	// TraceHash/TraceEvents identify the full causal event history when
	// -check or -trace is on (omitted otherwise, keeping checker-off output
	// unchanged). Two runs with equal values produced identical histories.
	TraceHash   string `json:"trace_hash,omitempty"`
	TraceEvents uint64 `json:"trace_events,omitempty"`
	// Fault-injection counters (omitted when -faults is off).
	FaultWindows    uint64 `json:"fault_windows,omitempty"`
	FaultJitter     uint64 `json:"fault_jitter_delay,omitempty"`
	FaultFilterSupp uint64 `json:"fault_filter_suppressed,omitempty"`
	InjRefused      uint64 `json:"inj_refused,omitempty"`
	// Lossy-interconnect recovery counters (omitted when no lossy fault ran).
	MsgDropped      uint64 `json:"msg_dropped,omitempty"`
	Retransmits     uint64 `json:"retransmits,omitempty"`
	DupSuppressed   uint64 `json:"dup_suppressed,omitempty"`
	CorruptDetected uint64 `json:"corrupt_detected,omitempty"`
	MSHRTimeouts    uint64 `json:"mshr_timeouts,omitempty"`
}

func reportJSON(res pushmulticast.Results) error {
	st := res.Stats
	out := jsonResult{
		Workload:     res.Workload,
		Scheme:       res.Scheme,
		Cycles:       res.Cycles,
		Instructions: st.Core.Instructions,
		IPC:          float64(st.Core.Instructions) / float64(res.Cycles),
		L1MPKI:       res.L1MPKI(),
		L2MPKI:       res.L2MPKI(),
		NoCFlits:     st.Net.TotalFlits(),
		FlitsByClass: map[string]uint64{},
		Pushes:       st.Cache.PushesTriggered,
		PushOutcomes: map[string]uint64{},
		FilteredReqs: st.Net.FilteredRequests,
		Coalesced:    st.Cache.CoalescedRequests,
		MemReads:     st.Cache.MemReads,
		MemWrites:    st.Cache.MemWrites,
	}
	if st.Cache.PushesTriggered > 0 {
		out.PushAvgDests = float64(st.Cache.PushDestinations) / float64(st.Cache.PushesTriggered)
	}
	if res.TraceEvents > 0 {
		out.TraceHash = fmt.Sprintf("%#x", res.TraceHash)
		out.TraceEvents = res.TraceEvents
	}
	out.FaultWindows = st.Net.FaultWindows
	out.FaultJitter = st.Net.FaultJitterDelay
	out.FaultFilterSupp = st.Net.FaultFilterSuppressed
	out.InjRefused = st.Net.InjRefused
	out.MsgDropped = st.Net.MsgDropped
	out.Retransmits = st.Net.Retransmits
	out.DupSuppressed = st.Net.DupSuppressed
	out.CorruptDetected = st.Net.CorruptDetected
	out.MSHRTimeouts = st.Cache.MSHRTimeouts
	for c := stats.Class(0); c < stats.NumClasses; c++ {
		if v := st.Net.TotalFlitsByClass[c]; v > 0 {
			out.FlitsByClass[c.String()] = v
		}
	}
	for o := stats.PushOutcome(0); o < stats.NumPushOutcomes; o++ {
		if v := st.Cache.PushOutcomes[o]; v > 0 {
			out.PushOutcomes[o.String()] = v
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func buildConfig(cores int, scheme, scale string, linkBits int) (pushmulticast.Config, error) {
	var cfg pushmulticast.Config
	switch cores {
	case 16:
		cfg = pushmulticast.Default16()
	case 64:
		cfg = pushmulticast.Default64()
	case 256:
		cfg = pushmulticast.Default256()
	default:
		return cfg, fmt.Errorf("unsupported core count %d (use 16, 64, or 256)", cores)
	}
	sch, err := pushmulticast.SchemeByName(scheme)
	if err != nil {
		return cfg, err
	}
	cfg = cfg.WithScheme(sch)
	cfg.NoC.LinkWidthBits = linkBits
	if scale != "full" {
		cfg = pushmulticast.ScaledConfig(cfg)
	}
	return cfg, nil
}

func parseScale(s string) (pushmulticast.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return pushmulticast.ScaleTiny, nil
	case "quick":
		return pushmulticast.ScaleQuick, nil
	case "full":
		return pushmulticast.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func report(res pushmulticast.Results) {
	st := res.Stats
	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("scheme          %s\n", res.Scheme)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("instructions    %d\n", st.Core.Instructions)
	fmt.Printf("IPC             %.3f\n", float64(st.Core.Instructions)/float64(res.Cycles))
	fmt.Printf("L1 MPKI         %.2f\n", res.L1MPKI())
	fmt.Printf("L2 MPKI         %.2f\n", res.L2MPKI())
	fmt.Printf("NoC flits       %d\n", st.Net.TotalFlits())
	fmt.Printf("  by class:\n")
	for c := stats.Class(0); c < stats.NumClasses; c++ {
		if v := st.Net.TotalFlitsByClass[c]; v > 0 {
			fmt.Printf("    %-16s %d\n", c, v)
		}
	}
	if st.Cache.PushesTriggered > 0 {
		fmt.Printf("pushes          %d (avg %.1f dests)\n", st.Cache.PushesTriggered,
			float64(st.Cache.PushDestinations)/float64(st.Cache.PushesTriggered))
		fmt.Printf("  outcomes:\n")
		for o := stats.PushOutcome(0); o < stats.NumPushOutcomes; o++ {
			if v := st.Cache.PushOutcomes[o]; v > 0 {
				fmt.Printf("    %-16s %d\n", o, v)
			}
		}
	}
	if st.Net.FilteredRequests > 0 {
		fmt.Printf("filtered reqs   %d\n", st.Net.FilteredRequests)
	}
	if st.Cache.CoalescedRequests > 0 {
		fmt.Printf("coalesced reqs  %d\n", st.Cache.CoalescedRequests)
	}
	if res.TraceEvents > 0 {
		fmt.Printf("event history   %d events, hash %#x\n", res.TraceEvents, res.TraceHash)
	}
	if st.Net.FaultWindows > 0 {
		fmt.Printf("fault windows   %d (jitter delay %d cyc, filter hits suppressed %d, injections refused %d)\n",
			st.Net.FaultWindows, st.Net.FaultJitterDelay, st.Net.FaultFilterSuppressed, st.Net.InjRefused)
	}
	if st.Net.MsgDropped+st.Net.CorruptDetected+st.Net.DupSuppressed > 0 {
		fmt.Printf("lossy recovery  dropped %d, corrupt %d, dups suppressed %d, retransmits %d, MSHR reissues %d\n",
			st.Net.MsgDropped, st.Net.CorruptDetected, st.Net.DupSuppressed,
			st.Net.Retransmits, st.Cache.MSHRTimeouts)
	}
}
