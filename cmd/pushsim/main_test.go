package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pushmulticast"
)

// TestBuildFaultPlanBadInput is the regression table for the -faultplan flag:
// every malformed or unreadable input must produce a single-line diagnostic
// error (main prints it and exits non-zero) rather than a panic or a silent
// fallback to faults-off.
func TestBuildFaultPlanBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name      string
		file      string
		intensity float64
		lossy     int
		want      string
	}{
		{"unreadable", filepath.Join(dir, "no-such-plan.json"), 0, 0, "no-such-plan.json"},
		{"not-json", write("garbage.json", "not json at all{"), 0, 0, "garbage.json"},
		{"wrong-shape", write("shape.json", `{"Faults": "everywhere"}`), 0, 0, "shape.json"},
		{"unknown-kind", write("kind.json", `{"Faults":[{"Kind":"MsgTeleport","From":0,"To":10}]}`), 0, 0, "MsgTeleport"},
		{"empty-window", write("window.json", `{"Faults":[{"Kind":"MsgDrop","From":50,"To":50,"Factor":10}]}`), 0, 0, "empty window"},
		{"node-out-of-range", write("node.json", `{"Faults":[{"Kind":"MsgDrop","Node":99,"From":0,"To":10,"Factor":10}]}`), 0, 0, "node 99"},
		{"overlapping-windows", write("overlap.json",
			`{"Faults":[{"Kind":"MsgDrop","Node":3,"From":0,"To":100,"Factor":10},
			            {"Kind":"MsgDrop","Node":3,"From":50,"To":150,"Factor":20}]}`), 0, 0, "overlapping"},
		{"combined-with-faults", write("ok.json", `{"Faults":[]}`), 0.5, 0, "cannot be combined"},
		{"combined-with-lossy", write("ok2.json", `{"Faults":[]}`), 0, 50, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := buildFaultPlan(16, tc.file, tc.intensity, tc.lossy, 1)
			if err == nil {
				t.Fatalf("buildFaultPlan accepted bad input, returned plan %+v", plan)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not a single line: %q", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildFaultPlanGoodInput pins the working paths: a valid plan file
// roundtrips, the generators produce validated plans, and all-off yields nil.
func TestBuildFaultPlanGoodInput(t *testing.T) {
	if p, err := buildFaultPlan(16, "", 0, 0, 1); err != nil || p != nil {
		t.Fatalf("faults-off: plan %+v, err %v; want nil, nil", p, err)
	}
	src := pushmulticast.GenerateLossyPlan(16, 7, 60)
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := buildFaultPlan(16, file, 0, 0, 1)
	if err != nil {
		t.Fatalf("valid plan file rejected: %v", err)
	}
	if p == nil || len(p.Faults) != len(src.Faults) || p.Seed != src.Seed {
		t.Fatalf("plan file roundtrip mismatch: got %d faults seed %d, want %d faults seed %d",
			len(p.Faults), p.Seed, len(src.Faults), src.Seed)
	}
	merged, err := buildFaultPlan(16, "", 0.5, 50, 9)
	if err != nil {
		t.Fatalf("generated chaos+lossy plan rejected: %v", err)
	}
	if merged == nil || !merged.Lossy() {
		t.Fatalf("chaos+lossy merge lost the lossy faults: %+v", merged)
	}
	if err := merged.Validate(16); err != nil {
		t.Fatalf("chaos+lossy merge does not validate: %v", err)
	}
}
