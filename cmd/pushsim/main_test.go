package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pushmulticast"
)

// TestBuildFaultPlanBadInput is the regression table for the -faultplan flag:
// every malformed or unreadable input must produce a single-line diagnostic
// error (main prints it and exits non-zero) rather than a panic or a silent
// fallback to faults-off.
func TestBuildFaultPlanBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name      string
		file      string
		intensity float64
		lossy     int
		want      string
	}{
		{"unreadable", filepath.Join(dir, "no-such-plan.json"), 0, 0, "no-such-plan.json"},
		{"not-json", write("garbage.json", "not json at all{"), 0, 0, "garbage.json"},
		{"wrong-shape", write("shape.json", `{"Faults": "everywhere"}`), 0, 0, "shape.json"},
		{"unknown-kind", write("kind.json", `{"Faults":[{"Kind":"MsgTeleport","From":0,"To":10}]}`), 0, 0, "MsgTeleport"},
		{"empty-window", write("window.json", `{"Faults":[{"Kind":"MsgDrop","From":50,"To":50,"Factor":10}]}`), 0, 0, "empty window"},
		{"node-out-of-range", write("node.json", `{"Faults":[{"Kind":"MsgDrop","Node":99,"From":0,"To":10,"Factor":10}]}`), 0, 0, "node 99"},
		{"overlapping-windows", write("overlap.json",
			`{"Faults":[{"Kind":"MsgDrop","Node":3,"From":0,"To":100,"Factor":10},
			            {"Kind":"MsgDrop","Node":3,"From":50,"To":150,"Factor":20}]}`), 0, 0, "overlapping"},
		{"combined-with-faults", write("ok.json", `{"Faults":[]}`), 0.5, 0, "cannot be combined"},
		{"combined-with-lossy", write("ok2.json", `{"Faults":[]}`), 0, 50, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := buildFaultPlan(16, tc.file, tc.intensity, tc.lossy, 1)
			if err == nil {
				t.Fatalf("buildFaultPlan accepted bad input, returned plan %+v", plan)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not a single line: %q", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildFaultPlanGoodInput pins the working paths: a valid plan file
// roundtrips, the generators produce validated plans, and all-off yields nil.
func TestBuildFaultPlanGoodInput(t *testing.T) {
	if p, err := buildFaultPlan(16, "", 0, 0, 1); err != nil || p != nil {
		t.Fatalf("faults-off: plan %+v, err %v; want nil, nil", p, err)
	}
	src := pushmulticast.GenerateLossyPlan(16, 7, 60)
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := buildFaultPlan(16, file, 0, 0, 1)
	if err != nil {
		t.Fatalf("valid plan file rejected: %v", err)
	}
	if p == nil || len(p.Faults) != len(src.Faults) || p.Seed != src.Seed {
		t.Fatalf("plan file roundtrip mismatch: got %d faults seed %d, want %d faults seed %d",
			len(p.Faults), p.Seed, len(src.Faults), src.Seed)
	}
	merged, err := buildFaultPlan(16, "", 0.5, 50, 9)
	if err != nil {
		t.Fatalf("generated chaos+lossy plan rejected: %v", err)
	}
	if merged == nil || !merged.Lossy() {
		t.Fatalf("chaos+lossy merge lost the lossy faults: %+v", merged)
	}
	if err := merged.Validate(16); err != nil {
		t.Fatalf("chaos+lossy merge does not validate: %v", err)
	}
}

// TestExecuteSnapshotRoundTrip pins the CLI checkpoint workflow end to end:
// a run that pauses to write a snapshot finishes with results identical to a
// plain run, and a fresh process restoring that snapshot finishes with the
// same results again — cycle count and full causal trace hash included.
func TestExecuteSnapshotRoundTrip(t *testing.T) {
	cfg, err := buildConfig(16, "OrdPush", "tiny", 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Check = true
	snapFile := filepath.Join(t.TempDir(), "pause.snap")

	cachebw, err := pushmulticast.WorkloadByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, "", 0, 0, "")
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	saved, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, snapFile, 5000, 0, "")
	if err != nil {
		t.Fatalf("snapshotting run: %v", err)
	}
	restored, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, "", 0, 0, snapFile)
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	// Periodic auto-checkpointing must also be output-transparent, and the
	// file left behind must be a complete restorable snapshot.
	ckptFile := filepath.Join(t.TempDir(), "auto.snap")
	auto, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, ckptFile, 0, 5000, "")
	if err != nil {
		t.Fatalf("auto-checkpointing run: %v", err)
	}
	resumed, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, ckptFile, 0, 5000, ckptFile)
	if err != nil {
		t.Fatalf("resumed auto-checkpointing run: %v", err)
	}
	for _, res := range []struct {
		name string
		got  pushmulticast.Results
	}{{"snapshotting", saved}, {"restored", restored}, {"auto-checkpointing", auto}, {"resumed", resumed}} {
		if res.got.Cycles != plain.Cycles || res.got.TraceHash != plain.TraceHash ||
			res.got.Stats.Core.Instructions != plain.Stats.Core.Instructions {
			t.Errorf("%s run diverged from plain run: cycles %d vs %d, trace %#x vs %#x",
				res.name, res.got.Cycles, plain.Cycles, res.got.TraceHash, plain.TraceHash)
		}
	}
}

// TestCheckSnapEvery is the -snapevery bad-input table: any explicitly set
// non-positive value is one one-line diagnostic; unset stays silent.
func TestCheckSnapEvery(t *testing.T) {
	cases := []struct {
		name string
		set  bool
		n    int64
		ok   bool
	}{
		{"unset", false, 0, true},
		{"positive", true, 5000, true},
		{"zero", true, 0, false},
		{"negative", true, -3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkSnapEvery(tc.set, tc.n)
			if tc.ok && err != nil {
				t.Fatalf("checkSnapEvery(%v, %d) = %v; want nil", tc.set, tc.n, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("checkSnapEvery(%v, %d) accepted bad input", tc.set, tc.n)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("diagnostic is not a single line: %q", err)
				}
			}
		})
	}
}

// TestExecuteBadInput is the regression table for the checkpoint flags: every
// unusable combination — and every snapshot whose format version or config
// fingerprint does not match the restoring machine — must produce a
// single-line diagnostic error (main prints it and exits 1), never a panic,
// a partial run, or a silent mis-restore.
func TestExecuteBadInput(t *testing.T) {
	cfg, err := buildConfig(16, "OrdPush", "tiny", 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Check = true
	dir := t.TempDir()
	snapFile := filepath.Join(dir, "donor.snap")
	cachebw, err := pushmulticast.WorkloadByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := execute(cfg, cachebw, pushmulticast.ScaleTiny, snapFile, 5000, 0, ""); err != nil {
		t.Fatalf("writing the donor snapshot: %v", err)
	}
	snap, err := os.ReadFile(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// A snapshot from a hypothetical newer build: same bytes, format version
	// field (first header field after the magic) patched to 2.
	futureSnap := append([]byte(nil), snap...)
	futureSnap[8] = 0x02
	baseline, err := buildConfig(16, "Baseline", "tiny", 128)
	if err != nil {
		t.Fatal(err)
	}
	baseline.Check = true

	cases := []struct {
		name      string
		cfg       pushmulticast.Config
		workload  string
		params    pushmulticast.CollectiveParams
		snapFile  string
		snapAt    uint64
		snapEvery uint64
		restore   string
		want      string
	}{
		{"snapshot combined with restore", cfg, "cachebw", pushmulticast.CollectiveParams{}, snapFile, 5000, 0, snapFile, "cannot be combined"},
		{"snapshot without snapat", cfg, "cachebw", pushmulticast.CollectiveParams{}, filepath.Join(dir, "x.snap"), 0, 0, "", "-snapat"},
		{"snapevery without snapshot", cfg, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 5000, "", "-snapevery requires -snapshot"},
		{"snapevery combined with snapat", cfg, "cachebw", pushmulticast.CollectiveParams{}, filepath.Join(dir, "y.snap"), 5000, 5000, "", "cannot be combined with -snapat"},
		{"restore file missing", cfg, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 0, filepath.Join(dir, "no-such.snap"), "no-such.snap"},
		{"restore file is not a snapshot", cfg, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 0, write("noise.snap", []byte("definitely not a snapshot file")), "bad magic"},
		{"truncated snapshot", cfg, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 0, write("trunc.snap", snap[:len(snap)-7]), "hash mismatch"},
		{"newer format version", cfg, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 0, write("future.snap", futureSnap), "format v2"},
		{"different scheme", baseline, "cachebw", pushmulticast.CollectiveParams{}, "", 0, 0, snapFile, "snapshot mismatch"},
		{"different workload", cfg, "bfs", pushmulticast.CollectiveParams{}, "", 0, 0, snapFile, "snapshot mismatch"},
		// Collective bad inputs: -workload/-cores combinations inconsistent
		// with the collective's structure must surface the same one-line
		// diagnostic + exit 1 contract, not a panic.
		{"unknown workload lists valid names", cfg, "allredcue", pushmulticast.CollectiveParams{}, "", 0, 0, "", "valid: allreduce, backprop"},
		{"collective sharers exceed cores", cfg, "allreduce", pushmulticast.CollectiveParams{Sharers: 32}, "", 0, 0, "", "32 sharers exceed the 16-core machine"},
		{"collective sharers below minimum", cfg, "broadcast", pushmulticast.CollectiveParams{Sharers: 1}, "", 0, 0, "", "below the minimum"},
		{"chunk does not divide payload", cfg, "broadcast", pushmulticast.CollectiveParams{ChunkLines: 7, PayloadLines: 100}, "", 0, 0, "", "does not divide"},
		{"prodcons group mismatch", cfg, "prodcons", pushmulticast.CollectiveParams{Sharers: 16, Fanout: 2}, "", 0, 0, "", "do not split into groups"},
		{"negative iters", cfg, "allreduce", pushmulticast.CollectiveParams{Iters: -1}, "", 0, 0, "", "Iters -1 is negative"},
		{"collective flags on a fixed workload", cfg, "cachebw", pushmulticast.CollectiveParams{Fanout: 4}, "", 0, 0, "", "not a collective"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Mirror main's pipeline: resolve the workload, then execute.
			// Either stage may be the one that rejects the input.
			wl, err := resolveWorkload(tc.workload, tc.params)
			if err == nil {
				_, err = execute(tc.cfg, wl, pushmulticast.ScaleTiny, tc.snapFile, tc.snapAt, tc.snapEvery, tc.restore)
			}
			if err == nil {
				t.Fatal("execute accepted bad input")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not a single line: %q", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}
