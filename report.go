package pushmulticast

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table renders aligned text tables for experiment reports.
type table struct {
	title   string
	columns []string
	rows    [][]string
	notes   []string
}

func newTable(title string, columns ...string) *table {
	return &table{title: title, columns: columns}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	var b strings.Builder
	b.WriteString(t.title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", len(t.title)))
	b.WriteString("\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.columns, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// f2 formats a float with two decimals; f1 with one; pct as a percentage.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
