package pushmulticast

import (
	"context"

	"fmt"
	"sort"

	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// Fig2Row is one workload's private-L2 pressure and NoC load under the
// baseline (Fig 2: L2 MPKI bars + injection-load dots).
type Fig2Row struct {
	Workload string
	L2MPKI   float64
	// InjLoad is the average NoC injection rate in flits/cycle/tile.
	InjLoad float64
}

// Fig2Result reproduces Fig 2.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 measures L2 MPKI and NoC injection load for every workload under the
// L1Bingo-L2Stride baseline.
func Fig2(o ExpOptions) (*Fig2Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(Workloads())
	if err != nil {
		return nil, err
	}
	cfg := o.baseConfig().WithScheme(Baseline())
	res, err := matrix(context.Background(), o, func(Scheme) Config { return cfg }, []Scheme{Baseline()}, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{}
	for _, wl := range wls {
		r := res[runKey{Baseline().Name, wl.Name}]
		var inj uint64
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			for c := stats.Class(0); c < stats.NumClasses; c++ {
				inj += r.Stats.Net.InjectedFlits[u][c]
			}
		}
		out.Rows = append(out.Rows, Fig2Row{
			Workload: wl.Name,
			L2MPKI:   r.L2MPKI(),
			InjLoad:  float64(inj) / float64(r.Cycles) / float64(cfg.Tiles()),
		})
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig2Result) String() string {
	t := newTable("Fig 2: private L2 MPKI and NoC injection load (baseline)",
		"Workload", "L2 MPKI", "Inj load (flits/cycle/tile)")
	for _, r := range f.Rows {
		t.addRow(r.Workload, f1(r.L2MPKI), fmt.Sprintf("%.3f", r.InjLoad))
	}
	return t.String()
}

// Fig3Row is one workload's traffic composition (Fig 3).
type Fig3Row struct {
	Workload string
	// Fractions of link-level flit traffic. ReadShared folds in push data,
	// as in the paper's classification.
	ReadShared, ReadRequest, Exclusive, WriteBack, Others float64
}

// Fig3Result reproduces Fig 3.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 classifies baseline NoC traffic per workload.
func Fig3(o ExpOptions) (*Fig3Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(Workloads())
	if err != nil {
		return nil, err
	}
	cfg := o.baseConfig().WithScheme(Baseline())
	res, err := matrix(context.Background(), o, func(Scheme) Config { return cfg }, []Scheme{Baseline()}, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{}
	for _, wl := range wls {
		r := res[runKey{Baseline().Name, wl.Name}]
		c := r.Stats.Net.TotalFlitsByClass
		total := float64(r.Stats.Net.TotalFlits())
		if total == 0 {
			total = 1
		}
		out.Rows = append(out.Rows, Fig3Row{
			Workload:    wl.Name,
			ReadShared:  float64(c[stats.ClassReadSharedData]+c[stats.ClassPushData]) / total,
			ReadRequest: float64(c[stats.ClassReadRequest]) / total,
			Exclusive:   float64(c[stats.ClassExclusiveData]) / total,
			WriteBack:   float64(c[stats.ClassWriteBackData]) / total,
			Others:      float64(c[stats.ClassOther]+c[stats.ClassPushAck]) / total,
		})
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig3Result) String() string {
	t := newTable("Fig 3: NoC traffic breakdown (baseline)",
		"Workload", "ReadShared", "ReadReq", "Exclusive", "WriteBack", "Others")
	for _, r := range f.Rows {
		t.addRow(r.Workload, pct(r.ReadShared), pct(r.ReadRequest),
			pct(r.Exclusive), pct(r.WriteBack), pct(r.Others))
	}
	return t.String()
}

// Fig4Pair summarizes the gap distribution between two consecutive sharers.
type Fig4Pair struct {
	Prev, Next                 int
	Samples                    int
	Min, P25, Median, P75, Max uint64
}

// Fig4Result reproduces Fig 4: the violin plot of time intervals between
// consecutive shared-line accesses from distinct sharers (mv).
type Fig4Result struct {
	Workload string
	Pairs    []Fig4Pair
	// AllMedian is the median over every recorded gap.
	AllMedian uint64
}

// Fig4 traces consecutive-sharer access gaps on mv under the reactive
// system (no pushes), matching the paper's characterization setup.
func Fig4(o ExpOptions) (*Fig4Result, error) {
	o = o.withDefaults()
	cfg := o.baseConfig().WithScheme(NoPrefetch())
	cfg.TraceSharerGaps = true
	wl := workload.MV()
	res, err := RunWorkload(cfg, wl, o.Scale)
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Workload: wl.Name}
	var all []uint64
	keys := make([]int, 0, len(res.Stats.SharerGaps))
	for k, v := range res.Stats.SharerGaps {
		if len(v.Samples) >= 8 {
			keys = append(keys, k)
		}
		all = append(all, v.Samples...)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s := sortU64(res.Stats.SharerGaps[k].Samples)
		out.Pairs = append(out.Pairs, Fig4Pair{
			Prev: k / 64, Next: k % 64, Samples: len(s),
			Min: s[0], P25: Quantile(s, 0.25), Median: Quantile(s, 0.5),
			P75: Quantile(s, 0.75), Max: s[len(s)-1],
		})
	}
	if len(all) > 0 {
		out.AllMedian = Quantile(sortU64(all), 0.5)
	}
	// Keep the report readable: the densest 16 pairs.
	if len(out.Pairs) > 16 {
		sort.Slice(out.Pairs, func(i, j int) bool { return out.Pairs[i].Samples > out.Pairs[j].Samples })
		out.Pairs = out.Pairs[:16]
		sort.Slice(out.Pairs, func(i, j int) bool {
			return out.Pairs[i].Prev*64+out.Pairs[i].Next < out.Pairs[j].Prev*64+out.Pairs[j].Next
		})
	}
	return out, nil
}

// String renders the figure as a quantile table (the violin's summary).
func (f *Fig4Result) String() string {
	t := newTable("Fig 4: consecutive sharer access gap distribution ("+f.Workload+")",
		"Pair", "Samples", "Min", "P25", "Median", "P75", "Max")
	for _, p := range f.Pairs {
		t.addRow(fmt.Sprintf("%d-%d", p.Prev, p.Next), fmt.Sprint(p.Samples),
			fmt.Sprint(p.Min), fmt.Sprint(p.P25), fmt.Sprint(p.Median),
			fmt.Sprint(p.P75), fmt.Sprint(p.Max))
	}
	t.addNote("median gap over all sharer pairs: %d cycles (paper: ~1000 at full "+
		"scale; scaled inputs compress absolute gaps). The comparable claim is the "+
		"ratio to the 10-cycle LLC lookup: upper quartiles span tens to hundreds of "+
		"cycles, so an LLC-side coalescing window rarely captures more than one "+
		"sharer, while pushes cover them all.", f.AllMedian)
	return t.String()
}
