package pushmulticast

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/check"
	"pushmulticast/internal/core"
	"pushmulticast/internal/workload"
)

// buildChecked wires a checker-enabled system for direct stepping.
func buildChecked(t *testing.T) *core.System {
	t.Helper()
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	cfg.Check = true
	cfg.TraceN = 128
	cfg.CheckEvery = 16
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(cfg, wl, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCheckerDetectsCorruptedSharerSet runs a sharing-heavy workload
// partway, silently drops sharer bits from the directory — the silent-
// sharer bug class the sharers-superset invariant exists for — and
// requires the checker's next structural sweep to flag it, with the event
// trace holding a tail for the dump.
func TestCheckerDetectsCorruptedSharerSet(t *testing.T) {
	sys := buildChecked(t)
	for i := 0; i < 2000; i++ {
		sys.Eng.Step()
	}
	if err := sys.Checker.Err(); err != nil {
		t.Fatalf("violation before corruption: %v", err)
	}
	// Drop every S-state private copy from its home directory's view.
	corrupted := 0
	for _, l2 := range sys.L2s {
		id := l2.ID()
		l2.ForEachLine(func(l *cache.Line) {
			if l.State != cache.StateS {
				return
			}
			home := sys.Cfg.HomeSlice(l.Tag)
			sys.LLCs[home].ForEachLine(func(d *cache.Line) {
				if d.Tag == l.Tag && d.Sharers.Has(id) {
					d.Sharers = d.Sharers.Remove(id)
					corrupted++
				}
			})
		})
	}
	if corrupted == 0 {
		t.Fatal("no shared line found to corrupt after warm-up")
	}
	// The next sweep is at most CheckEvery cycles away.
	for i := 0; i < 64 && sys.Checker.Err() == nil; i++ {
		sys.Eng.Step()
	}
	err := sys.Checker.Err()
	if err == nil {
		t.Fatal("corrupted sharer set not detected by the checker sweep")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("violation not wrapped in check.ErrViolation: %v", err)
	}
	if !strings.Contains(err.Error(), "superset") {
		t.Fatalf("wrong diagnosis for a dropped sharer: %v", err)
	}
	if len(sys.Tracer.Tail()) == 0 {
		t.Error("trace tail empty at the violation — nothing to dump")
	}
}

// TestCheckerTraceTailHoldsRecentEvents asserts the bounded ring retains
// the most recent events in order: after a run, the tail must be
// non-empty, capped at TraceN, and cycle-monotone — the properties the
// post-mortem dump relies on.
func TestCheckerTraceTailHoldsRecentEvents(t *testing.T) {
	sys := buildChecked(t)
	for i := 0; i < 3000; i++ {
		sys.Eng.Step()
	}
	tail := sys.Tracer.Tail()
	if len(tail) == 0 {
		t.Fatal("no events retained after 3000 cycles of a sharing workload")
	}
	if len(tail) > 128 {
		t.Fatalf("tail holds %d events, ring bound is 128", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Cycle < tail[i-1].Cycle {
			t.Fatalf("tail not cycle-monotone at %d: %d after %d", i, tail[i].Cycle, tail[i-1].Cycle)
		}
	}
	if sys.Tracer.Events() < uint64(len(tail)) {
		t.Fatalf("event count %d below tail length %d", sys.Tracer.Events(), len(tail))
	}
}

// TestCheckerDoesNotPerturbResults requires the checker and trace to be
// pure observers: a checked run must report exactly the cycles and
// counters of an unchecked one.
func TestCheckerDoesNotPerturbResults(t *testing.T) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	plain, err := Run(cfg, "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(withCheck(cfg), "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != checked.Cycles {
		t.Errorf("checker changed the cycle count: %d vs %d", plain.Cycles, checked.Cycles)
	}
	if !reflect.DeepEqual(plain.Stats, checked.Stats) {
		t.Error("checker changed the counter bundle")
	}
	if checked.TraceEvents == 0 || checked.TraceHash == 0 {
		t.Errorf("checked run carries no event history: hash=%#x events=%d", checked.TraceHash, checked.TraceEvents)
	}
	if plain.TraceEvents != 0 || plain.TraceHash != 0 {
		t.Errorf("unchecked run unexpectedly traced: hash=%#x events=%d", plain.TraceHash, plain.TraceEvents)
	}
}
