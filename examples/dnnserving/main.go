// DNN serving study: the paper motivates Push Multicast with deep-learning
// inference kernels whose weights are read-shared by every core (mlp,
// conv3d, backprop). This example scales the core count from 16 to 64 and
// shows how the benefit grows with sharing degree.
//
//	go run ./examples/dnnserving
package main

import (
	"fmt"
	"log"

	"pushmulticast"
)

func run(cores int, scheme pushmulticast.Scheme, wl string) pushmulticast.Results {
	var cfg pushmulticast.Config
	if cores == 64 {
		cfg = pushmulticast.Default64()
	} else {
		cfg = pushmulticast.Default16()
	}
	cfg = pushmulticast.ScaledConfig(cfg).WithScheme(scheme)
	res, err := pushmulticast.Run(cfg, wl, pushmulticast.ScaleTiny)
	if err != nil {
		log.Fatalf("%d-core %s/%s: %v", cores, scheme.Name, wl, err)
	}
	return res
}

func main() {
	workloads := []string{"mlp", "conv3d", "backprop"}
	for _, cores := range []int{16, 64} {
		fmt.Printf("== %d cores ==\n", cores)
		for _, wl := range workloads {
			base := run(cores, pushmulticast.Baseline(), wl)
			push := run(cores, pushmulticast.OrdPush(), wl)
			c := push.Stats.Cache
			var avgDests, acc float64
			if c.PushesTriggered > 0 {
				avgDests = float64(c.PushDestinations) / float64(c.PushesTriggered)
			}
			if c.TotalPushes() > 0 {
				acc = float64(c.UsefulPushes()) / float64(c.TotalPushes())
			}
			fmt.Printf("  %-10s speedup %.2fx  traffic %.2fx  push dests %.1f  accuracy %.0f%%\n",
				wl,
				float64(base.Cycles)/float64(push.Cycles),
				float64(push.TotalNoCFlits())/float64(base.TotalNoCFlits()),
				avgDests, 100*acc)
		}
	}
	fmt.Println("\nhigher core counts mean more sharers per weight line, so each")
	fmt.Println("multicast replaces more unicasts — the 64-core system benefits more,")
	fmt.Println("matching the paper's scalability result (Fig 11).")
}
