// Quickstart: run one workload under the reactive baseline and under Push
// Multicast (OrdPush), and compare execution time, NoC traffic, and push
// effectiveness.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pushmulticast"
)

func main() {
	const workload = "cachebw"
	scale := pushmulticast.ScaleTiny

	baseCfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).
		WithScheme(pushmulticast.Baseline())
	base, err := pushmulticast.Run(baseCfg, workload, scale)
	if err != nil {
		log.Fatal(err)
	}

	pushCfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).
		WithScheme(pushmulticast.OrdPush())
	push, err := pushmulticast.Run(pushCfg, workload, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on a 16-core 4x4 mesh\n\n", workload)
	fmt.Printf("%-24s %12s %12s\n", "", "baseline", "OrdPush")
	fmt.Printf("%-24s %12d %12d\n", "cycles", base.Cycles, push.Cycles)
	fmt.Printf("%-24s %12d %12d\n", "NoC flits", base.TotalNoCFlits(), push.TotalNoCFlits())
	fmt.Printf("%-24s %12.1f %12.1f\n", "L2 MPKI", base.L2MPKI(), push.L2MPKI())
	fmt.Printf("\nspeedup            %.2fx\n", float64(base.Cycles)/float64(push.Cycles))
	fmt.Printf("traffic saving     %.0f%%\n",
		100*(1-float64(push.TotalNoCFlits())/float64(base.TotalNoCFlits())))

	c := push.Stats.Cache
	fmt.Printf("\npush multicasts    %d (avg %.1f destinations)\n",
		c.PushesTriggered, float64(c.PushDestinations)/float64(c.PushesTriggered))
	fmt.Printf("push usefulness    %.0f%% (miss-to-hit + early-response)\n",
		100*float64(c.UsefulPushes())/float64(c.TotalPushes()))
	fmt.Printf("filtered requests  %d pruned in-network\n", push.Stats.Net.FilteredRequests)
}
