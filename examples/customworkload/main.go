// Custom workload: build your own access-stream generator against the
// public API and evaluate it under Push Multicast. The workload here is a
// read-mostly key-value lookup service: every core scans a shared index
// (read-shared, re-referenced) and then touches private session state.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"pushmulticast"
)

// kvStream generates one core's ops: alternating shared-index lookups and
// private session updates.
type kvStream struct {
	core     int
	i        int
	total    int
	idxLines uint64
}

func (s *kvStream) next() pushmulticast.Op {
	if s.i >= s.total {
		return pushmulticast.Op{Kind: pushmulticast.OpEnd}
	}
	s.i++
	// Deterministic per-core probe sequence over the shared index.
	h := uint64(s.i)*2654435761 + uint64(s.core)
	switch s.i % 4 {
	case 0:
		return pushmulticast.Op{Kind: pushmulticast.OpWork, N: 12}
	case 1: // shared index probe
		line := (h * 7) % s.idxLines
		return pushmulticast.Op{Kind: pushmulticast.OpLoad, Addr: pushmulticast.SharedBase + line*64}
	case 2: // sequential shared scan leg (range query)
		line := uint64(s.i) % s.idxLines
		return pushmulticast.Op{Kind: pushmulticast.OpLoad, Addr: pushmulticast.SharedBase + line*64}
	default: // private session write
		line := h % 64
		return pushmulticast.Op{Kind: pushmulticast.OpStore,
			Addr: pushmulticast.PrivateBase(s.core) + line*64}
	}
}

func main() {
	wl := pushmulticast.Workload{
		Name:        "kvservice",
		Description: "read-mostly KV lookups over a shared index",
		Class:       "custom",
		Build: func(core, cores int, _ pushmulticast.Scale) pushmulticast.Stream {
			s := &kvStream{core: core, total: 4000, idxLines: 512}
			return pushmulticast.StreamFunc(s.next)
		},
	}

	for _, sch := range []pushmulticast.Scheme{pushmulticast.Baseline(), pushmulticast.OrdPush()} {
		cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).WithScheme(sch)
		res, err := pushmulticast.RunWorkload(cfg, wl, pushmulticast.ScaleTiny)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s cycles %8d  flits %8d  L2 MPKI %6.1f  pushes %d\n",
			sch.Name, res.Cycles, res.TotalNoCFlits(), res.L2MPKI(),
			res.Stats.Cache.PushesTriggered)
	}
}
