// HPC kernel study: evaluate the scheme lattice on the two linear-algebra
// kernels the paper's introduction motivates (matrix-vector multiply and LU
// decomposition), reporting speedups and where the traffic goes.
//
//	go run ./examples/hpckernels
package main

import (
	"fmt"
	"log"

	"pushmulticast"
)

func main() {
	schemes := []pushmulticast.Scheme{
		pushmulticast.Baseline(),
		pushmulticast.Coalesce(),
		pushmulticast.MSP(),
		pushmulticast.PushAck(),
		pushmulticast.OrdPush(),
	}
	cfg := func(s pushmulticast.Scheme) pushmulticast.Config {
		return pushmulticast.ScaledConfig(pushmulticast.Default16()).WithScheme(s)
	}

	for _, wl := range []string{"mv", "lud"} {
		fmt.Printf("== %s ==\n", wl)
		var baseCycles, baseFlits uint64
		for _, s := range schemes {
			res, err := pushmulticast.Run(cfg(s), wl, pushmulticast.ScaleTiny)
			if err != nil {
				log.Fatalf("%s/%s: %v", s.Name, wl, err)
			}
			if s.Name == pushmulticast.Baseline().Name {
				baseCycles, baseFlits = res.Cycles, res.TotalNoCFlits()
			}
			fmt.Printf("  %-22s speedup %.2fx  traffic %.2fx  L2 MPKI %6.1f\n",
				s.Name,
				float64(baseCycles)/float64(res.Cycles),
				float64(res.TotalNoCFlits())/float64(baseFlits),
				res.L2MPKI())
		}
		fmt.Println()
	}
	fmt.Println("mv streams private matrix rows while re-reading a shared vector;")
	fmt.Println("lud re-reads a shared pivot panel. Push Multicast covers the shared")
	fmt.Println("re-reads; the private streams are untouched, bounding the gain.")
}
