package pushmulticast

import (
	"context"
	"fmt"
	"time"
)

// WarmStartVariant is one knob point of the warm-start sweep, with its cold
// and warm-forked outcomes side by side.
type WarmStartVariant struct {
	TPCThreshold int    `json:"tpc_threshold"`
	TimeWindow   int    `json:"time_window"`
	ColdCycles   uint64 `json:"cold_cycles"`
	WarmCycles   uint64 `json:"warm_cycles"`
	// ExactResume is true for the variant whose knobs equal the donor's: its
	// warm run is a strict-fingerprint resume and must match its cold run
	// exactly. Other variants are forks — their pre-barrier history ran
	// under the donor's knobs, so warm and cold cycles may differ slightly.
	ExactResume bool `json:"exact_resume"`
}

// WarmStartReport is the BENCH_snapshot.json schema: the measured warm-start
// sweep campaign, cold versus forked-from-one-checkpoint.
type WarmStartReport struct {
	Benchmark string   `json:"benchmark"`
	Workload  string   `json:"workload"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Notes     []string `json:"notes"`

	VariantCount    int     `json:"variant_count"`
	DonorCycles     uint64  `json:"donor_total_cycles"`
	BarrierCycle    uint64  `json:"barrier_cycle"`
	BarrierFraction float64 `json:"barrier_fraction"`
	SnapshotBytes   int     `json:"snapshot_bytes"`
	SnapshotHash    string  `json:"snapshot_hash"`

	ColdNs                 int64   `json:"cold_ns"`
	WarmupNs               int64   `json:"warmup_ns"`
	FanoutNs               int64   `json:"fanout_ns"`
	WarmNs                 int64   `json:"warm_ns"`
	SpeedupX               float64 `json:"speedup_x"`
	ExactResumeMatchesCold bool    `json:"exact_resume_matches_cold"`

	Variants []WarmStartVariant `json:"variants"`
}

// warmStartVariants is the swept knob grid: the OrdPush pause/resume
// threshold crossed with the decision time window, ten points including the
// donor's own setting.
func warmStartVariants(base Config) []Config {
	var out []Config
	for _, tpc := range []int{8, 16, 32, 64, 128} {
		for _, win := range []int{500, 1500} {
			v := base
			v.TPCThreshold = tpc
			v.TimeWindow = win
			out = append(out, v)
		}
	}
	return out
}

// ExpWarmStart measures the warm-start sweep campaign: a ten-point
// pause/resume knob sweep over OrdPush run twice, once cold (every variant
// from cycle zero) and once forked from a single checkpoint taken at ~90% of
// the donor run. Both phases run the variants one at a time on one worker,
// so the reported speedup is the per-worker work reduction
// N / (f + N·(1−f)) and not an artifact of pool scheduling; the forked phase
// goes through the same WarmStartSweep fan-out the harness exposes.
func ExpWarmStart(o ExpOptions) (*WarmStartReport, error) {
	o = o.withDefaults()
	// One worker in both phases: the speedup claim is about total work, and
	// must not depend on how many variants the host can overlap.
	o.Parallelism = 1
	base := o.baseConfig()
	base = base.WithScheme(OrdPush())
	variants := warmStartVariants(base)
	wl, err := WorkloadByName("cachebw")
	if err != nil {
		return nil, err
	}
	sc := o.Scale
	rep := &WarmStartReport{
		Benchmark:    "BenchmarkWarmStartSweep",
		Workload:     fmt.Sprintf("cachebw / OrdPush knob sweep / %d cores", base.Tiles()),
		VariantCount: len(variants),
		Notes: []string{
			"cold_ns runs every variant from cycle 0; warm_ns = warmup_ns (donor run to the barrier + snapshot) + fanout_ns (every variant restored from that one snapshot and run to completion).",
			"Both phases run variants sequentially on one worker: speedup_x is the per-worker work reduction N/(f + N*(1-f)) for N variants forked at barrier fraction f, not a pool-scheduling artifact.",
			"The variant whose knobs equal the donor's is an exact (strict-fingerprint) resume and must reproduce its cold run bit-for-bit (exact_resume_matches_cold). The other variants are forks: their pre-barrier history executed under the donor's knob values, which is the documented warm-start approximation - their warm_cycles may differ from cold_cycles.",
			"The forked phase goes through the harness's WarmStartSweep/memoizedWarmRun path; warm memo keys carry the snapshot content hash, so warm and cold runs of one configuration can never alias.",
		},
	}

	// Cold phase: every variant from cycle zero, no memo (timing honesty).
	coldStart := time.Now()
	coldRes := make([]Results, len(variants))
	for i, v := range variants {
		res, err := RunWorkload(v, wl, sc)
		if err != nil {
			return nil, fmt.Errorf("cold variant %d: %w", i, err)
		}
		coldRes[i] = res
	}
	rep.ColdNs = time.Since(coldStart).Nanoseconds()
	rep.DonorCycles = coldRes[donorIndex(variants, base)].Cycles
	rep.BarrierCycle = rep.DonorCycles * 90 / 100
	rep.BarrierFraction = float64(rep.BarrierCycle) / float64(rep.DonorCycles)

	// Warm phase: one donor run to the barrier, one snapshot, N forks.
	ClearRunMemo() // a memo hit would time a map lookup, not a fork
	warmupStart := time.Now()
	warmRes, snap, err := WarmStartSweep(context.Background(), o, base, variants, wl, rep.BarrierCycle)
	if err != nil {
		return nil, err
	}
	rep.WarmNs = time.Since(warmupStart).Nanoseconds()
	rep.SnapshotBytes = len(snap)
	rep.SnapshotHash = fmt.Sprintf("%#x", SnapshotHash(snap))
	// Split warm-up from fan-out by re-timing the donor's pause alone; the
	// sweep above already paid it, so this stays a measurement, not a rerun
	// of the campaign.
	wuStart := time.Now()
	m, err := NewMachine(base, wl, sc)
	if err != nil {
		return nil, err
	}
	if err := m.RunTo(rep.BarrierCycle); err != nil {
		return nil, err
	}
	if _, err := m.Snapshot(); err != nil {
		return nil, err
	}
	rep.WarmupNs = time.Since(wuStart).Nanoseconds()
	rep.FanoutNs = rep.WarmNs - rep.WarmupNs
	if rep.FanoutNs < 0 {
		rep.FanoutNs = 0
	}
	if rep.WarmNs > 0 {
		rep.SpeedupX = float64(rep.ColdNs) / float64(rep.WarmNs)
	}

	rep.ExactResumeMatchesCold = true
	for i, v := range variants {
		exact := v.TPCThreshold == base.TPCThreshold && v.TimeWindow == base.TimeWindow
		rep.Variants = append(rep.Variants, WarmStartVariant{
			TPCThreshold: v.TPCThreshold,
			TimeWindow:   v.TimeWindow,
			ColdCycles:   coldRes[i].Cycles,
			WarmCycles:   warmRes[i].Cycles,
			ExactResume:  exact,
		})
		if exact && (coldRes[i].Cycles != warmRes[i].Cycles ||
			coldRes[i].Stats.Core.Instructions != warmRes[i].Stats.Core.Instructions) {
			rep.ExactResumeMatchesCold = false
		}
	}
	if !rep.ExactResumeMatchesCold {
		return rep, fmt.Errorf("warm-start: exact resume diverged from its cold run")
	}
	return rep, nil
}

// donorIndex finds the variant whose knobs equal the donor's.
func donorIndex(variants []Config, base Config) int {
	for i, v := range variants {
		if v.TPCThreshold == base.TPCThreshold && v.TimeWindow == base.TimeWindow {
			return i
		}
	}
	return 0
}
