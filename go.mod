module pushmulticast

go 1.22
