package pushmulticast

import (
	"context"

	"fmt"

	"pushmulticast/internal/workload"
)

// Fig17Row is one knob-sensitivity measurement.
type Fig17Row struct {
	Workload string
	// Param is the swept value (TPC threshold for 17a, time window for 17b).
	Param int
	// Speedup is relative to the L1Bingo-L2Stride baseline.
	Speedup float64
}

// Fig17Result reproduces Fig 17 (dynamic knob sensitivity).
type Fig17Result struct {
	// Axis names the swept parameter.
	Axis string
	Rows []Fig17Row
}

// fig17Workloads are the two knob-sensitive benchmarks the paper sweeps.
func fig17Workloads() []Workload {
	return []Workload{workload.Conv3D(), workload.BFS()}
}

// Fig17a sweeps the TPC threshold (with a long time window) over conv3d and
// bfs under OrdPush.
func Fig17a(o ExpOptions) (*Fig17Result, error) {
	return fig17(o, "TPC threshold", []int{16, 64, 256, 1024},
		func(cfg Config, v int) Config {
			cfg.TPCThreshold = v
			cfg.TimeWindow = 2000
			return cfg
		})
}

// Fig17b sweeps the time window (with a low TPC threshold) over conv3d and
// bfs under OrdPush.
func Fig17b(o ExpOptions) (*Fig17Result, error) {
	return fig17(o, "time window", []int{300, 500, 1000, 1500, 2000, 2500},
		func(cfg Config, v int) Config {
			cfg.TPCThreshold = 16
			cfg.TimeWindow = v
			return cfg
		})
}

func fig17(o ExpOptions, axis string, sweep []int, apply func(Config, int) Config) (*Fig17Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(fig17Workloads())
	if err != nil {
		return nil, err
	}
	out := &Fig17Result{Axis: axis}
	// Baselines per workload.
	base, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) },
		[]Scheme{Baseline()}, wls)
	if err != nil {
		return nil, err
	}
	for _, v := range sweep {
		v := v
		schemes := []Scheme{OrdPush()}
		res, err := matrix(context.Background(), o, func(s Scheme) Config {
			return apply(o.baseConfig().WithScheme(s), v)
		}, schemes, wls)
		if err != nil {
			return nil, err
		}
		for _, wl := range wls {
			b := base[runKey{Baseline().Name, wl.Name}]
			r := res[runKey{OrdPush().Name, wl.Name}]
			sp, err := speedup(b, r)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Fig17Row{Workload: wl.Name, Param: v, Speedup: sp})
		}
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig17Result) String() string {
	t := newTable("Fig 17: knob sensitivity ("+f.Axis+"), OrdPush vs baseline",
		"Workload", f.Axis, "Speedup x")
	for _, r := range f.Rows {
		t.addRow(r.Workload, fmt.Sprint(r.Param), f2(r.Speedup))
	}
	return t.String()
}

// Fig18Row is one link-width sensitivity measurement.
type Fig18Row struct {
	Scheme, Workload string
	LinkBits         int
	Speedup          float64
}

// Fig18Result reproduces Fig 18 (NoC bandwidth sensitivity).
type Fig18Result struct{ Rows []Fig18Row }

// Fig18 sweeps link width for PushAck and OrdPush, each normalized to the
// baseline at the same width.
func Fig18(o ExpOptions) (*Fig18Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	out := &Fig18Result{}
	for _, width := range []int{64, 128, 256, 512} {
		width := width
		schemes := []Scheme{Baseline(), PushAck(), OrdPush()}
		res, err := matrix(context.Background(), o, func(s Scheme) Config {
			cfg := o.baseConfig().WithScheme(s)
			cfg.NoC.LinkWidthBits = width
			return cfg
		}, schemes, wls)
		if err != nil {
			return nil, err
		}
		for _, s := range schemes[1:] {
			for _, wl := range wls {
				b := res[runKey{Baseline().Name, wl.Name}]
				r := res[runKey{s.Name, wl.Name}]
				sp, err := speedup(b, r)
				if err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, Fig18Row{
					Scheme: s.Name, Workload: wl.Name, LinkBits: width, Speedup: sp,
				})
			}
		}
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig18Result) String() string {
	t := newTable("Fig 18: speedup vs baseline across link widths",
		"Scheme", "Workload", "64-bit", "128-bit", "256-bit", "512-bit")
	type key struct{ s, w string }
	cells := map[key]map[int]float64{}
	var order []key
	for _, r := range f.Rows {
		k := key{r.Scheme, r.Workload}
		if cells[k] == nil {
			cells[k] = map[int]float64{}
			order = append(order, k)
		}
		cells[k][r.LinkBits] = r.Speedup
	}
	for _, k := range order {
		t.addRow(k.s, k.w, f2(cells[k][64]), f2(cells[k][128]), f2(cells[k][256]), f2(cells[k][512]))
	}
	return t.String()
}

// Fig19Row is one cache-size sensitivity measurement.
type Fig19Row struct {
	Scheme, Workload string
	// CacheCfg names the L2/LLC-slice sizing point.
	CacheCfg string
	Speedup  float64
}

// Fig19Result reproduces Fig 19 (cache configuration sensitivity).
type Fig19Result struct{ Rows []Fig19Row }

// fig19Points returns the three L2/LLC sizing points, as multiples of the
// base configuration (256KB/1MB, 512KB/1MB, 1MB/2MB per tile in the paper).
func fig19Points(base Config) []struct {
	name      string
	l2, slice int
} {
	return []struct {
		name      string
		l2, slice int
	}{
		{"256KB/1MB", base.L2Size, base.LLCSliceSize},
		{"512KB/1MB", base.L2Size * 2, base.LLCSliceSize},
		{"1MB/2MB", base.L2Size * 4, base.LLCSliceSize * 2},
	}
}

// Fig19 sweeps private/shared cache capacity for PushAck and OrdPush.
func Fig19(o ExpOptions) (*Fig19Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	out := &Fig19Result{}
	for _, pt := range fig19Points(o.baseConfig()) {
		pt := pt
		schemes := []Scheme{Baseline(), PushAck(), OrdPush()}
		res, err := matrix(context.Background(), o, func(s Scheme) Config {
			cfg := o.baseConfig().WithScheme(s)
			cfg.L2Size = pt.l2
			cfg.LLCSliceSize = pt.slice
			return cfg
		}, schemes, wls)
		if err != nil {
			return nil, err
		}
		for _, s := range schemes[1:] {
			for _, wl := range wls {
				b := res[runKey{Baseline().Name, wl.Name}]
				r := res[runKey{s.Name, wl.Name}]
				sp, err := speedup(b, r)
				if err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, Fig19Row{
					Scheme: s.Name, Workload: wl.Name, CacheCfg: pt.name, Speedup: sp,
				})
			}
		}
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig19Result) String() string {
	t := newTable("Fig 19: speedup vs baseline across L2/LLC sizes",
		"Scheme", "Workload", "Cache cfg", "Speedup x")
	for _, r := range f.Rows {
		t.addRow(r.Scheme, r.Workload, r.CacheCfg, f2(r.Speedup))
	}
	t.addNote("cache points are scaled equivalents of the paper's 256KB/1MB, 512KB/1MB, 1MB/2MB per tile")
	return t.String()
}
