package pushmulticast

import (
	"context"

	"pushmulticast/internal/core"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
	"pushmulticast/internal/workload"
)

// Checkpoint/restore surface. A Machine is a built simulation that can be
// paused at a cycle barrier, serialized into a snapshot, and resumed — in
// this process or another — with byte-identical results: a restored run
// continued to completion reports the same cycles, counters, and trace hash
// as a cold run that never paused.
//
// Snapshots carry two config fingerprints. The strict fingerprint must match
// for an exact resume. The fork fingerprint ignores tuning knobs (pause/
// resume thresholds, coalescing window, retry timers), so one warmed
// snapshot can seed a whole knob sweep (see WarmStartSweep); such a fork is
// still an exact state transfer, but the warm-up ran under the donor's knob
// values.

// ErrSnapshotMismatch wraps every refusal to restore a snapshot: wrong
// format version, a config fingerprint differing from the restoring machine,
// or tracer/checker/fault-injector presence disagreeing. Test with
// errors.Is.
var ErrSnapshotMismatch = snapshot.ErrMismatch

// ErrSnapshotCorrupt wraps decode failures on a snapshot whose header was
// accepted: truncation, section desync, or a trailer-hash mismatch.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// Machine wraps one built simulation for pause/snapshot/resume workflows.
// The one-shot Run/RunWorkload entry points remain the simpler path when no
// checkpointing is needed.
type Machine struct {
	sys *core.System
	wl  Workload
}

// NewMachine builds (but does not run) a simulation of the workload on the
// configuration.
func NewMachine(cfg Config, wl Workload, sc Scale) (*Machine, error) {
	sys, err := core.Build(cfg, wl, sc)
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys, wl: wl}, nil
}

// WorkloadByName resolves a registry workload (see WorkloadNames).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Now returns the machine's current cycle.
func (m *Machine) Now() uint64 { return uint64(m.sys.Eng.Now()) }

// RunTo advances the simulation until the clock reaches the given cycle (or
// the workload finishes first). The wake-driven kernel may overshoot when
// every component sleeps across the target cycle; Snapshot captures the
// actual stop cycle either way, and equivalence is unaffected — the paused
// trajectory is state-identical to an unpaused run at every cycle.
func (m *Machine) RunTo(cycle uint64) error { return m.sys.RunTo(sim.Cycle(cycle), 0) }

// RunToCtx is RunTo with cooperative cancellation: the context is polled at
// cycle barriers, and a fired context stops the machine loop promptly with a
// wrapped ErrCanceled (trace tail included) instead of burning CPU to the
// barrier for a caller that is gone.
func (m *Machine) RunToCtx(ctx context.Context, cycle uint64) error {
	return m.sys.RunToCtx(ctx, sim.Cycle(cycle), 0)
}

// Snapshot serializes the machine's full state. It must be called while the
// machine is paused (after NewMachine or RunTo, never concurrently with
// Finish). Identical states yield byte-identical snapshots.
func (m *Machine) Snapshot() ([]byte, error) { return m.sys.Snapshot() }

// Done reports whether the workload has already retired on every core — the
// run loop's own termination condition, queryable while the machine is
// paused. A periodic-checkpoint loop uses it to stop slicing once the next
// RunTo would have nothing left to run.
func (m *Machine) Done() bool { return m.sys.Finished() }

// Finish runs the simulation to completion and returns its results. The
// machine is spent afterwards.
func (m *Machine) Finish() (Results, error) { return m.FinishCtx(context.Background()) }

// FinishCtx is Finish with cooperative cancellation, polled at cycle barriers
// like RunToCtx.
func (m *Machine) FinishCtx(ctx context.Context) (Results, error) {
	res, err := m.sys.RunCtx(ctx, 0)
	if err != nil {
		return Results{}, err
	}
	res.Workload = m.wl.Name
	return res, nil
}

// RestoreMachine builds a fresh machine for (cfg, wl, sc) and loads the
// snapshot into it. The config must match the snapshot's strict fingerprint,
// or differ from it only in warm-start tuning knobs (fork fingerprint);
// anything else fails with ErrSnapshotMismatch before any state is touched.
func RestoreMachine(data []byte, cfg Config, wl Workload, sc Scale) (*Machine, error) {
	sys, err := core.Restore(data, cfg, wl, sc)
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys, wl: wl}, nil
}

// SnapshotHash returns the snapshot's FNV-1a content identity — the value
// the run memo keys warm-started runs by, so a warm and a cold run of the
// same configuration can never alias.
func SnapshotHash(data []byte) uint64 { return snapshot.Hash(data) }

// SnapshotCycle returns the cycle at which a snapshot was taken, without
// decoding any state.
func SnapshotCycle(data []byte) (uint64, error) {
	hdr, err := snapshot.ReadHeader(data)
	if err != nil {
		return 0, err
	}
	return hdr.Cycle, nil
}
