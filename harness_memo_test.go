package pushmulticast

import (
	"context"
	"sync"
	"testing"

	"pushmulticast/internal/workload"
)

// TestMemoSingleFlight races many goroutines at the same memo key and
// requires exactly one simulation: every caller must get back the same
// Results, sharing one Stats bundle by pointer. Run with -race, this is the
// regression test for the unsynchronized map the memo used to be.
func TestMemoSingleFlight(t *testing.T) {
	ClearRunMemo()
	t.Cleanup(ClearRunMemo)
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	const callers = 8
	results := make([]Results, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := memoizedRun(context.Background(), cfg, wl, ScaleTiny)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i].Stats != results[0].Stats {
			t.Fatalf("caller %d got a distinct Stats bundle: the run was simulated more than once", i)
		}
	}
}

// TestMemoKeyDistinguishesRuns pins the key-collision fixes: scale, workload,
// and the dereferenced fault plan must all separate entries — and a config
// differing only in its fault-plan *pointer* must still hit the same entry.
func TestMemoKeyDistinguishesRuns(t *testing.T) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	wlA, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	wlB, err := workload.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	base := newMemoKey(cfg, wlA, ScaleTiny)
	if k := newMemoKey(cfg, wlA, ScaleQuick); k == base {
		t.Error("scale not part of the memo key")
	}
	if k := newMemoKey(cfg, wlB, ScaleTiny); k == base {
		t.Error("workload not part of the memo key")
	}
	planA := FaultPlan{Seed: 1, Faults: []Fault{{Kind: FaultRouterSlow, Node: 0, From: 1, To: 2, Factor: 2}}}
	planB := FaultPlan{Seed: 2, Faults: planA.Faults}
	cfgA, cfgB := cfg, cfg
	cfgA.Faults, cfgB.Faults = &planA, &planB
	kA := newMemoKey(cfgA, wlA, ScaleTiny)
	if kB := newMemoKey(cfgB, wlA, ScaleTiny); kA == kB {
		t.Error("fault plans with different contents share a memo key")
	}
	// Same plan contents behind a different pointer must alias (the key holds
	// the dereferenced plan, not the address).
	planC := planA
	cfgC := cfg
	cfgC.Faults = &planC
	if kC := newMemoKey(cfgC, wlA, ScaleTiny); kA != kC {
		t.Error("identical fault plans behind different pointers got distinct keys")
	}
}

// TestMemoClearDuringFlight hammers memoizedRun while concurrently clearing
// the memo: in-flight runs must complete and release their waiters even when
// their entry vanishes underneath them (exercised under -race in CI).
func TestMemoClearDuringFlight(t *testing.T) {
	ClearRunMemo()
	t.Cleanup(ClearRunMemo)
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default16()).WithScheme(Baseline())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := memoizedRun(context.Background(), cfg, wl, ScaleTiny); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		ClearRunMemo()
	}
	wg.Wait()
}

// TestMemoWarmColdNoAlias is the warm-start aliasing regression: a run
// forked from a snapshot and a cold run of the identical configuration race
// into the memo concurrently and must occupy distinct entries — the warm
// key carries the snapshot's content hash. An aliased memo would hand a
// fork's results (whose pre-barrier history ran under the donor's knobs) to
// a caller that asked for a cold run, silently corrupting campaign figures.
// Run with -race in CI.
func TestMemoWarmColdNoAlias(t *testing.T) {
	ClearRunMemo()
	t.Cleanup(ClearRunMemo)
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	donor := ScaledConfig(Default16()).WithScheme(OrdPush())
	m, err := NewMachine(donor, wl, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunTo(4000); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The forked target differs from the donor only in a tuning knob, and is
	// also run cold — the exact configuration pair that would alias if the
	// memo key ignored snapshot provenance.
	target := donor
	target.TPCThreshold = 99
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := memoizedRun(context.Background(), target, wl, ScaleTiny); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := memoizedWarmRun(context.Background(), target, wl, ScaleTiny, snap); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	runMemo.Lock()
	entries := len(runMemo.m)
	runMemo.Unlock()
	if entries != 2 {
		t.Fatalf("memo holds %d entries for (cold, warm) of one config; want 2 (no aliasing, no duplicates)", entries)
	}
	coldKey := newMemoKey(target, wl, ScaleTiny)
	warmKey := coldKey
	warmKey.snap = SnapshotHash(snap)
	runMemo.Lock()
	_, haveCold := runMemo.m[coldKey]
	_, haveWarm := runMemo.m[warmKey]
	runMemo.Unlock()
	if !haveCold || !haveWarm {
		t.Fatalf("expected distinct cold and warm entries (cold %v, warm %v)", haveCold, haveWarm)
	}
}
