package pushmulticast

import (
	"math"
	"strings"
	"testing"
)

// tinyOpts keeps experiment tests fast: tiny inputs, few workloads.
func tinyOpts(wls ...string) ExpOptions {
	return ExpOptions{Scale: ScaleTiny, Cores: 16, Workloads: wls}
}

func TestRunByName(t *testing.T) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	res, err := Run(cfg, "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "cachebw" || res.Scheme != "OrdPush" || res.Cycles == 0 {
		t.Fatalf("bad results: %+v", res)
	}
	if _, err := Run(cfg, "doesnotexist", ScaleTiny); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGeomean(t *testing.T) {
	g, err := geomean([]float64{2, 8})
	if err != nil || math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v, %v", g, err)
	}
	// Poisoned inputs are errors, not silent zeros: an empty slice, a zero
	// from a broken run, and non-finite ratios all must refuse.
	for _, bad := range [][]float64{nil, {1, 0}, {2, -1}, {2, math.NaN()}, {2, math.Inf(1)}} {
		if _, err := geomean(bad); err == nil {
			t.Errorf("geomean(%v) accepted poisoned input", bad)
		}
	}
}

func TestSpeedupGuards(t *testing.T) {
	ok := Results{Scheme: "OrdPush", Workload: "cachebw", Cycles: 500}
	base := Results{Scheme: "Baseline", Workload: "cachebw", Cycles: 1000}
	sp, err := speedup(base, ok)
	if err != nil || math.Abs(sp-2) > 1e-12 {
		t.Errorf("speedup = %v, %v; want 2", sp, err)
	}
	if _, err := speedup(Results{Scheme: "Baseline"}, ok); err == nil {
		t.Error("zero baseline cycles accepted")
	}
	if _, err := speedup(base, Results{Scheme: "OrdPush"}); err == nil {
		t.Error("zero scheme cycles accepted")
	}
}

func TestQuantile(t *testing.T) {
	s := sortU64([]uint64{5, 1, 9, 3, 7})
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 9 || Quantile(s, 0.5) != 5 {
		t.Errorf("quantiles wrong: %v", s)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Off-rank quantiles interpolate linearly instead of truncating down.
	if got := Quantile([]uint64{1, 3, 5, 9}, 0.5); got != 4 {
		t.Errorf("median of {1,3,5,9} = %d, want interpolated 4", got)
	}
	if got := Quantile([]uint64{1, 3, 5, 7, 9}, 0.99); got != 9 {
		t.Errorf("P99 of {1..9} = %d, want 9 (rounded from 8.92)", got)
	}
	if got := Quantile([]uint64{10, 20}, 0.75); got != 18 {
		t.Errorf("P75 of {10,20} = %d, want 18", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("Title", "A", "B")
	tb.addRow("x", "1")
	tb.addNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"Title", "A", "B", "x", "1", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestTables(t *testing.T) {
	o := tinyOpts()
	t1 := TableI(o)
	if !strings.Contains(t1, "4x4 tiles") || !strings.Contains(t1, "TPC threshold") {
		t.Errorf("Table I incomplete:\n%s", t1)
	}
	t2 := TableII()
	for _, wl := range []string{"cachebw", "bfs", "swaptions"} {
		if !strings.Contains(t2, wl) {
			t.Errorf("Table II missing %s", wl)
		}
	}
}

func TestFig2And3Tiny(t *testing.T) {
	f2r, err := Fig2(tinyOpts("cachebw", "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2r.Rows) != 2 {
		t.Fatalf("Fig2 rows = %d", len(f2r.Rows))
	}
	// High-load cachebw must dominate low-load swaptions on both axes.
	if f2r.Rows[0].L2MPKI <= f2r.Rows[1].L2MPKI || f2r.Rows[0].InjLoad <= f2r.Rows[1].InjLoad {
		t.Errorf("Fig2 shape wrong: %+v", f2r.Rows)
	}
	f3r, err := Fig3(tinyOpts("cachebw", "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	cb := f3r.Rows[0]
	if cb.ReadShared < 0.5 {
		t.Errorf("cachebw read-shared fraction = %v, want > 0.5", cb.ReadShared)
	}
	sum := cb.ReadShared + cb.ReadRequest + cb.Exclusive + cb.WriteBack + cb.Others
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("cachebw fractions sum to %v", sum)
	}
	if f3r.Rows[1].ReadShared > 0.2 {
		t.Errorf("swaptions read-shared fraction = %v, want tiny", f3r.Rows[1].ReadShared)
	}
	if f2r.String() == "" || f3r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig4Tiny(t *testing.T) {
	f, err := Fig4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Pairs) == 0 {
		t.Fatal("no sharer gap samples recorded")
	}
	if f.AllMedian == 0 {
		t.Error("zero median gap")
	}
	if !strings.Contains(f.String(), "median gap") {
		t.Error("rendering incomplete")
	}
}

func TestFig11Tiny(t *testing.T) {
	f, err := Fig11(tinyOpts("cachebw", "mlp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 || len(f.Schemes) != 4 {
		t.Fatalf("Fig11 shape: %d rows %d schemes", len(f.Rows), len(f.Schemes))
	}
	// cachebw: OrdPush must beat the baseline.
	for _, r := range f.Rows {
		if r.Workload == "cachebw" && r.Speedup["OrdPush"] <= 1.0 {
			t.Errorf("cachebw OrdPush speedup = %v, want > 1", r.Speedup["OrdPush"])
		}
	}
	if f.Geomean["OrdPush"] == 0 || f.Max["OrdPush"] == 0 {
		t.Error("aggregates missing")
	}
}

func TestFig12Tiny(t *testing.T) {
	f, err := Fig12(tinyOpts("cachebw"))
	if err != nil {
		t.Fatal(err)
	}
	var ord *Fig12Row
	for i := range f.Rows {
		if f.Rows[i].Scheme == "OrdPush" {
			ord = &f.Rows[i]
		}
	}
	if ord == nil || ord.Total == 0 {
		t.Fatal("no OrdPush pushes recorded")
	}
	useful := ord.Percent[4] + ord.Percent[5] // MissToHit + EarlyResp
	if useful < 0.7 {
		t.Errorf("cachebw OrdPush usefulness = %v, want high", useful)
	}
}

func TestFig13Tiny(t *testing.T) {
	f, err := Fig13(tinyOpts("cachebw"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if r.Scheme == "OrdPush" && r.Total >= 1.0 {
			t.Errorf("OrdPush cachebw traffic %v not below baseline", r.Total)
		}
	}
	if f.AvgSavingOrdPush <= 0 {
		t.Errorf("average OrdPush saving = %v, want positive", f.AvgSavingOrdPush)
	}
}

func TestFig14Tiny(t *testing.T) {
	f, err := Fig14(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Grids) != 2 {
		t.Fatalf("grids = %d", len(f.Grids))
	}
	base, ord := f.Grids[0], f.Grids[1]
	if ord.Total >= base.Total {
		t.Errorf("OrdPush link flits %d not below baseline %d", ord.Total, base.Total)
	}
	if base.MaxLoad == 0 || ord.MaxLink == "" {
		t.Error("hotspot data missing")
	}
}

func TestFig15And16Tiny(t *testing.T) {
	f15, err := Fig15(tinyOpts("cachebw"))
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Fig16(tinyOpts("cachebw"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f16.Rows {
		if r.Scheme == "OrdPush" && r.Injected >= 1.0 {
			t.Errorf("LLC injection %v not reduced by multicasts", r.Injected)
		}
		if r.Scheme == "PushAck" && r.InjPushAck > 0 {
			t.Error("LLC should not inject PushAck messages")
		}
	}
	foundAck := false
	for _, r := range f15.Rows {
		if r.Scheme == "PushAck" && r.InjPushAck > 0 {
			foundAck = true
		}
	}
	if !foundAck {
		t.Error("PushAck scheme shows no L2 PushAck injection")
	}
}

func TestFig20Tiny(t *testing.T) {
	f, err := Fig20(tinyOpts("cachebw", "bfs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stages) != 4 {
		t.Fatalf("stages = %v", f.Stages)
	}
	for _, r := range f.Rows {
		if r.Workload != "bfs" {
			continue
		}
		if r.Speedup["Push+Multicast+Filter+Knob"] < r.Speedup["Push"] {
			t.Errorf("knob stage should not be worse than raw Push on bfs: %+v", r.Speedup)
		}
	}
}

func TestExtInterplayTiny(t *testing.T) {
	f, err := ExtInterplay(tinyOpts("cachebw", "mlp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.OrdPush <= 0 || r.Combined <= 0 {
			t.Errorf("%s: non-positive speedups %+v", r.Workload, r)
		}
	}
}

func TestExtRecentPushTableTiny(t *testing.T) {
	f, err := ExtRecentPushTable(tinyOpts("cachebw"))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rows[0]
	if r.PushesWithout <= r.PushesWith {
		t.Errorf("recent-push table should reduce triggered multicasts: with=%d without=%d",
			r.PushesWith, r.PushesWithout)
	}
	if r.TrafficRatio >= 1.0 {
		t.Errorf("traffic ratio %v not below 1", r.TrafficRatio)
	}
}

func TestExtFutureDirectionsTiny(t *testing.T) {
	f, err := ExtFutureDirections(tinyOpts("cachebw", "bfs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.OrdPush <= 0 || r.Predict <= 0 || r.DeepL1 <= 0 {
			t.Errorf("%s: non-positive speedups %+v", r.Workload, r)
		}
	}
}

func TestPredictivePushTriggersOnRefetch(t *testing.T) {
	// bfs at tiny scale with a shrunken LLC forces evictions and refetches;
	// the predictor must add fill-time pushes over plain OrdPush, and the
	// run must stay coherent.
	mk := func(sch Scheme) Results {
		cfg := ScaledConfig(Default16()).WithScheme(sch)
		cfg.LLCSliceSize /= 16
		res, err := Run(cfg, "bfs", ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ord := mk(OrdPush())
	pred := mk(PredictivePush())
	if pred.Stats.Cache.PushesTriggered <= ord.Stats.Cache.PushesTriggered {
		t.Errorf("predictor added no pushes: ord=%d pred=%d",
			ord.Stats.Cache.PushesTriggered, pred.Stats.Cache.PushesTriggered)
	}
}

func TestDeepPushFillsL1(t *testing.T) {
	cfg := ScaledConfig(Default16()).WithScheme(DeepPush())
	res, err := Run(cfg, "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(ScaledConfig(Default16()).WithScheme(OrdPush()), "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1MPKI() >= base.L1MPKI() {
		t.Errorf("L1 push fill did not reduce L1 MPKI: %v vs %v", res.L1MPKI(), base.L1MPKI())
	}
}

func TestExpOptionsDefaults(t *testing.T) {
	o := ExpOptions{}.withDefaults()
	if o.Cores != 16 || o.Parallelism < 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.baseConfig().Tiles() != 16 {
		t.Fatal("default config not 16 tiles")
	}
	o64 := ExpOptions{Cores: 64}.withDefaults()
	if o64.baseConfig().Tiles() != 64 {
		t.Fatal("64-core config not 64 tiles")
	}
	full := ExpOptions{Scale: ScaleFull}.withDefaults()
	if full.baseConfig().L2Size != Default16().L2Size {
		t.Fatal("full scale must keep Table I caches")
	}
	quick := ExpOptions{Scale: ScaleQuick}.withDefaults()
	if quick.baseConfig().L2Size >= Default16().L2Size {
		t.Fatal("quick scale must shrink caches")
	}
}

func TestExpOptionsWorkloadFilter(t *testing.T) {
	o := ExpOptions{Workloads: []string{"cachebw", "bfs"}}.withDefaults()
	wls, err := o.pickWorkloads(Workloads())
	if err != nil || len(wls) != 2 || wls[0].Name != "cachebw" {
		t.Fatalf("filter wrong: %v %v", wls, err)
	}
	bad := ExpOptions{Workloads: []string{"nope"}}.withDefaults()
	if _, err := bad.pickWorkloads(Workloads()); err == nil {
		t.Fatal("unknown workload accepted")
	}
	def := ExpOptions{}.withDefaults()
	wls, err = def.pickWorkloads(Workloads())
	if err != nil || len(wls) != 15 {
		t.Fatalf("default set wrong: %d %v", len(wls), err)
	}
}

func TestSchemeAccessors(t *testing.T) {
	if Baseline().Name != "L1Bingo-L2Stride" || OrdPush().Name != "OrdPush" {
		t.Fatal("scheme names changed; experiment row keys depend on them")
	}
	names := WorkloadNames()
	if len(names) != 19 || names[0] != "cachebw" || names[15] != "allreduce" {
		t.Fatalf("workload names changed: %v", names)
	}
}
