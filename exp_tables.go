package pushmulticast

import (
	"fmt"
	"strings"
)

// TableI renders the system configuration (the paper's Table I) for the
// given options.
func TableI(o ExpOptions) string {
	o = o.withDefaults()
	cfg := o.baseConfig()
	t := newTable("Table I: system configuration",
		"Parameter", "Configuration")
	t.addRow("System", fmt.Sprintf("%dx%d tiles", cfg.MeshW, cfg.MeshH))
	t.addRow("Core", fmt.Sprintf("%d-wide retire, %d-deep load window, %d-entry store buffer",
		cfg.CoreWidth, cfg.CoreWindow, cfg.StoreBuffer))
	t.addRow("L1D", fmt.Sprintf("%dKB %d-way, %d-cycle", cfg.L1Size>>10, cfg.L1Ways, cfg.L1Latency))
	t.addRow("L2 (private)", fmt.Sprintf("%dKB %d-way, %d-cycle, %d MSHRs",
		cfg.L2Size>>10, cfg.L2Ways, cfg.L2Latency, cfg.L2MSHRs))
	t.addRow("LLC slice (shared)", fmt.Sprintf("%dKB %d-way, %d-cycle",
		cfg.LLCSliceSize>>10, cfg.LLCWays, cfg.LLCLatency))
	t.addRow("Coherence", "MSI directory, PushAck/OrdPush extensions")
	t.addRow("Prefetchers", fmt.Sprintf("L1 Bingo (%dB regions, %d PHT), L2 Stride (%d streams x %d)",
		cfg.BingoRegionBytes, cfg.BingoPHTEntries, cfg.StrideStreams, cfg.StrideDegree))
	t.addRow("DRAM", fmt.Sprintf("%d-cycle latency, 1 line / %d cycles / controller, 4 corner controllers",
		cfg.MemLatency, cfg.MemCyclesPerLine))
	t.addRow("NoC", fmt.Sprintf("%dx%d mesh, 2-stage routers, %d VCs/vnet x 3 vnets, %d-bit links, 1/%d-flit ctrl/data packets",
		cfg.MeshW, cfg.MeshH, cfg.NoC.VCsPerVNet, cfg.NoC.LinkWidthBits, cfg.NoC.DataPacketSize()))
	t.addRow("Routing", "XY requests / YX responses, virtual cut-through")
	t.addRow("Dynamic knob", fmt.Sprintf("TPC threshold %d, time window %d, ratio 1/%d",
		cfg.TPCThreshold, cfg.TimeWindow, 1<<cfg.KnobRatioShift))
	if o.Scale != ScaleFull {
		t.addNote("caches scaled for %s-scale inputs; use ScaleFull for Table I capacities", o.Scale)
	}
	return t.String()
}

// TableII renders the workload inventory (the paper's Table II analogue).
func TableII() string {
	t := newTable("Table II: workloads", "Workload", "Class", "Description")
	for _, w := range Workloads() {
		t.addRow(w.Name, w.Class, w.Description)
	}
	t.addNote("synthetic access-stream reproductions of the paper's benchmarks (DESIGN.md §1)")
	return t.String()
}

// joinNames renders workload name lists for error messages.
func joinNames(wls []Workload) string {
	names := make([]string, len(wls))
	for i, w := range wls {
		names[i] = w.Name
	}
	return strings.Join(names, ",")
}
