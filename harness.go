package pushmulticast

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"pushmulticast/internal/workload"
)

// ExpOptions controls the experiment harness.
type ExpOptions struct {
	// Scale selects workload input sizing. ScaleQuick (the default) pairs
	// scaled-down caches with scaled-down inputs so the paper's pressure
	// ratios are preserved at a fraction of the runtime; ScaleFull uses
	// the unscaled Table I machine.
	Scale Scale
	// Cores is 16 (default) or 64.
	Cores int
	// Workloads restricts the workload set (nil = figure default).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS, divided by
	// SimWorkers when the parallel kernel is on so the host is not
	// oversubscribed with Parallelism × SimWorkers goroutines).
	Parallelism int
	// SimWorkers runs each simulation on the parallel tick executor with
	// this many workers (0 or 1 = serial kernel). Results are byte-identical
	// either way.
	SimWorkers int
	// Check enables the runtime invariant checker on every simulation in
	// the campaign (tier-1 tests and short campaigns; leave off for
	// benchmarking — the checker adds per-cycle work).
	Check bool
	// Faults, when non-nil, enables the deterministic fault-injection layer
	// on every simulation in the campaign (see FaultPlan).
	Faults *FaultPlan
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Cores == 0 {
		o.Cores = 16
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
		if o.SimWorkers > 1 {
			// Split host cores between concurrent matrix jobs and intra-sim
			// workers instead of stacking the two levels of parallelism.
			if o.Parallelism /= o.SimWorkers; o.Parallelism < 1 {
				o.Parallelism = 1
			}
		}
	}
	return o
}

// baseConfig returns the machine for the options: full caches at ScaleFull,
// quick-scaled otherwise.
func (o ExpOptions) baseConfig() Config {
	var cfg Config
	if o.Cores == 64 {
		cfg = Default64()
	} else {
		cfg = Default16()
	}
	if o.Scale != ScaleFull {
		cfg = ScaledConfig(cfg)
	}
	cfg.ParallelWorkers = o.SimWorkers
	cfg.Check = o.Check
	cfg.Faults = o.Faults
	return cfg
}

// pickWorkloads resolves the workload set.
func (o ExpOptions) pickWorkloads(def []Workload) ([]Workload, error) {
	if len(o.Workloads) == 0 {
		return def, nil
	}
	var out []Workload
	for _, name := range o.Workloads {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, wl)
	}
	return out, nil
}

// runKey identifies a simulation in the matrix.
type runKey struct {
	scheme   string
	workload string
}

// runMemo caches completed runs across the whole experiment campaign, keyed
// by the full configuration plus workload and scale: several exp_* figures
// share identical baseline runs, and the kernel's determinism guarantees a
// cached Results is indistinguishable from a fresh one. Entries are shared
// read-only — Results.Stats points at one bundle, and figure code must not
// mutate it. Each key is simulated exactly once: a goroutine arriving while
// the run is in flight waits on the entry instead of duplicating the work.
var runMemo struct {
	sync.Mutex
	m map[memoKey]*memoEntry
}

// memoKey identifies a run. The fields are kept separate (instead of one
// joined string) so no formatting artifact can alias two different runs —
// notably, workload and scale stay distinct from the config text. The
// fault-plan pointer is dereferenced into the key: formatting the pointer
// itself would make the key an unstable address and alias all plans.
type memoKey struct {
	cfg      string
	faults   string
	workload string
	// params is the workload's canonical parameter signature: two collective
	// variants share a Name but must never share a cached run.
	params string
	scale  Scale
	// snap is the content hash of the snapshot a warm-started run forked
	// from, 0 for cold runs. A warm fork's results legitimately differ from
	// the same configuration's cold results (the warm-up executed under the
	// donor's tuning knobs), so the two must never share a memo entry; the
	// content hash also separates forks of different donors or barriers.
	snap uint64
}

func newMemoKey(cfg Config, wl Workload, sc Scale) memoKey {
	faults := ""
	if cfg.Faults != nil {
		faults = fmt.Sprintf("%+v", *cfg.Faults)
	}
	cfg.Faults = nil
	return memoKey{cfg: fmt.Sprintf("%+v", cfg), faults: faults, workload: wl.Name, params: wl.Params, scale: sc}
}

// memoEntry is one in-flight or completed run; done closes when res/err are
// final.
type memoEntry struct {
	done chan struct{}
	res  Results
	err  error
}

// ClearRunMemo empties the campaign-level run memo (tests). In-flight runs
// complete normally and release their waiters; their entries are simply no
// longer found by later lookups.
func ClearRunMemo() {
	runMemo.Lock()
	runMemo.m = nil
	runMemo.Unlock()
}

// memoizedRun returns the cached Results for an identical earlier run, or
// simulates and caches. Concurrent callers with the same key share one
// simulation. Failed runs are not cached: the entry is dropped before its
// waiters are released, so a later retry re-simulates.
func memoizedRun(cfg Config, wl Workload, sc Scale) (Results, error) {
	return memoized(newMemoKey(cfg, wl, sc), func() (Results, error) {
		return RunWorkload(cfg, wl, sc)
	})
}

// memoizedWarmRun is memoizedRun for a run forked from a warmed snapshot:
// the key carries the snapshot's content hash, so warm and cold runs of the
// same configuration occupy distinct entries.
func memoizedWarmRun(cfg Config, wl Workload, sc Scale, snap []byte) (Results, error) {
	key := newMemoKey(cfg, wl, sc)
	key.snap = SnapshotHash(snap)
	return memoized(key, func() (Results, error) {
		m, err := RestoreMachine(snap, cfg, wl, sc)
		if err != nil {
			return Results{}, err
		}
		return m.Finish()
	})
}

func memoized(key memoKey, run func() (Results, error)) (Results, error) {
	runMemo.Lock()
	if runMemo.m == nil {
		runMemo.m = make(map[memoKey]*memoEntry)
	}
	if e, ok := runMemo.m[key]; ok {
		runMemo.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	runMemo.m[key] = e
	runMemo.Unlock()
	e.res, e.err = run()
	if e.err != nil {
		runMemo.Lock()
		if runMemo.m[key] == e {
			delete(runMemo.m, key)
		}
		runMemo.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// matrix runs every (scheme, workload) pair concurrently, with cfgFor
// producing the per-scheme configuration, and returns results keyed by
// scheme then workload.
func matrix(o ExpOptions, cfgFor func(Scheme) Config, schemes []Scheme, wls []Workload) (map[runKey]Results, error) {
	type job struct {
		sch Scheme
		wl  Workload
	}
	var jobs []job
	for _, sch := range schemes {
		for _, wl := range wls {
			jobs = append(jobs, job{sch, wl})
		}
	}
	results := make(map[runKey]Results, len(jobs))
	var (
		mu     sync.Mutex
		errs   []error
		seen   map[string]bool
		failed bool
	)
	// fail records an error, deduplicating repeats: a broken configuration
	// tends to sink every pair the same way, and one copy per distinct cause
	// reads better than len(jobs) copies of the same message.
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		failed = true
		if seen == nil {
			seen = make(map[string]bool)
		}
		if msg := err.Error(); !seen[msg] {
			seen[msg] = true
			errs = append(errs, err)
		}
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return failed
	}
	// A fixed pool of o.Parallelism workers pulls jobs off a channel: at most
	// that many simulations (and goroutines) exist at once, instead of one
	// goroutine per matrix cell parked on a semaphore.
	workers := o.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobsCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobsCh {
				if stopped() {
					continue // a simulation already failed; drain the queue
				}
				res, err := memoizedRun(cfgFor(j.sch), j.wl, o.Scale)
				if err != nil {
					fail(fmt.Errorf("%s/%s: %w", j.sch.Name, j.wl.Name, err))
					continue
				}
				mu.Lock()
				results[runKey{j.sch.Name, j.wl.Name}] = res
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobsCh <- j
	}
	close(jobsCh)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return results, nil
}

// WarmStartSweep forks a tuning-knob sweep from one warmed checkpoint. The
// base configuration runs alone to the barrier cycle and snapshots; every
// variant configuration then restores from that snapshot and runs to
// completion over the harness's bounded worker pool, so the sweep pays the
// warm-up phase once instead of len(variants) times. Results are returned in
// variant order, alongside the snapshot itself (its SnapshotHash is each
// warm run's memo identity).
//
// Variants must differ from base only in warm-start tuning knobs
// (TPCThreshold, TimeWindow, KnobRatioShift, CoalesceWindow, retry timers) —
// the snapshot's fork fingerprint enforces this, refusing anything else with
// ErrSnapshotMismatch. A variant identical to base is an exact resume,
// byte-identical to its cold run; any other variant is an approximation in
// exactly one sense: its pre-barrier history executed under base's knob
// values.
func WarmStartSweep(o ExpOptions, base Config, variants []Config, wl Workload, barrier uint64) ([]Results, []byte, error) {
	o = o.withDefaults()
	m, err := NewMachine(base, wl, o.Scale)
	if err != nil {
		return nil, nil, err
	}
	if err := m.RunTo(barrier); err != nil {
		return nil, nil, err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	results := make([]Results, len(variants))
	workers := o.Parallelism
	if workers > len(variants) {
		workers = len(variants)
	}
	idxCh := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, err := memoizedWarmRun(variants[i], wl, o.Scale, snap)
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("warm fork %d: %w", i, err))
					mu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range variants {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	return results, snap, nil
}

// speedup returns baseline-cycles / scheme-cycles. A zero cycle count on
// either side marks a broken run; it is reported as an error instead of
// silently producing a 0 (or Inf) that would poison campaign geomeans.
func speedup(base, scheme Results) (float64, error) {
	if base.Cycles == 0 || scheme.Cycles == 0 {
		return 0, fmt.Errorf("speedup %s/%s: zero cycle count (base %s=%d, scheme %s=%d)",
			scheme.Scheme, scheme.Workload, base.Scheme, base.Cycles, scheme.Scheme, scheme.Cycles)
	}
	return float64(base.Cycles) / float64(scheme.Cycles), nil
}

// geomean returns the geometric mean of the values. An empty slice or any
// non-positive or non-finite value is an error: a single poisoned input
// (0 from a broken run, NaN/Inf from a bad ratio) would otherwise corrupt
// the campaign summary silently.
func geomean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, errors.New("geomean of no values")
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("geomean: non-positive or non-finite input %v in %v", v, vals)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals))), nil
}

// quantile returns the q-quantile (0..1) of sorted samples, linearly
// interpolating between the two nearest ranks and rounding to the nearest
// integer. Truncating to the lower rank instead would bias high quantiles
// (P99 on a handful of samples) toward the smaller neighbour.
func quantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	// Clamp the quantile to [0, 1]; a NaN q (e.g. 0/0 from an upstream
	// ratio) would otherwise flow through int(NaN), whose value is
	// platform-dependent.
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo < 0 {
		return sorted[0]
	}
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	a, b := float64(sorted[lo]), float64(sorted[lo+1])
	return uint64(a + (b-a)*frac + 0.5)
}

func sortU64(v []uint64) []uint64 {
	out := append([]uint64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
