package pushmulticast

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"pushmulticast/internal/workload"
)

// ExpOptions controls the experiment harness.
type ExpOptions struct {
	// Scale selects workload input sizing. ScaleQuick (the default) pairs
	// scaled-down caches with scaled-down inputs so the paper's pressure
	// ratios are preserved at a fraction of the runtime; ScaleFull uses
	// the unscaled Table I machine.
	Scale Scale
	// Cores is 16 (default) or 64.
	Cores int
	// Workloads restricts the workload set (nil = figure default).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS). Whether
	// defaulted or set explicitly, it is clamped so that
	// Parallelism × max(SimWorkers, 1) never exceeds GOMAXPROCS: the two
	// levels of parallelism multiply, and an explicit Parallelism used to
	// bypass the divide-by-SimWorkers guard and silently oversubscribe the
	// host with Parallelism × SimWorkers runnable goroutines.
	Parallelism int
	// SimWorkers runs each simulation on the parallel tick executor with
	// this many workers (0 or 1 = serial kernel). Results are byte-identical
	// either way. Values above GOMAXPROCS are clamped to it: extra workers
	// past the processor count only add contention, never speed.
	SimWorkers int
	// Check enables the runtime invariant checker on every simulation in
	// the campaign (tier-1 tests and short campaigns; leave off for
	// benchmarking — the checker adds per-cycle work).
	Check bool
	// Faults, when non-nil, enables the deterministic fault-injection layer
	// on every simulation in the campaign (see FaultPlan).
	Faults *FaultPlan
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Cores == 0 {
		o.Cores = 16
	}
	// Split host cores between concurrent matrix jobs and intra-sim workers
	// instead of stacking the two levels of parallelism. The budget applies
	// to explicit Parallelism values too: the guard used to cover only the
	// defaulted path, so Parallelism=8 with SimWorkers=4 silently ran 32
	// runnable goroutines on the host.
	budget := runtime.GOMAXPROCS(0)
	if o.SimWorkers > budget {
		// Intra-sim workers alone must not oversubscribe the host either.
		o.SimWorkers = budget
	}
	if o.SimWorkers > 1 {
		if budget /= o.SimWorkers; budget < 1 {
			budget = 1
		}
	}
	if o.Parallelism <= 0 || o.Parallelism > budget {
		o.Parallelism = budget
	}
	return o
}

// baseConfig returns the machine for the options: full caches at ScaleFull,
// quick-scaled otherwise.
func (o ExpOptions) baseConfig() Config {
	var cfg Config
	if o.Cores == 64 {
		cfg = Default64()
	} else {
		cfg = Default16()
	}
	if o.Scale != ScaleFull {
		cfg = ScaledConfig(cfg)
	}
	cfg.ParallelWorkers = o.SimWorkers
	cfg.Check = o.Check
	cfg.Faults = o.Faults
	return cfg
}

// pickWorkloads resolves the workload set.
func (o ExpOptions) pickWorkloads(def []Workload) ([]Workload, error) {
	if len(o.Workloads) == 0 {
		return def, nil
	}
	var out []Workload
	for _, name := range o.Workloads {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, wl)
	}
	return out, nil
}

// runKey identifies a simulation in the matrix.
type runKey struct {
	scheme   string
	workload string
}

// runMemo caches completed runs across the whole campaign (experiment
// figures and the simd service alike), keyed by the full configuration plus
// workload and scale: several exp_* figures share identical baseline runs,
// and the kernel's determinism guarantees a cached Results is
// indistinguishable from a fresh one. Entries are shared read-only —
// Results.Stats points at one bundle, and figure code must not mutate it.
// Each key is simulated exactly once: a goroutine arriving while the run is
// in flight waits on the entry instead of duplicating the work.
//
// Completed entries live on a size-bounded LRU list (lru front = most
// recent); the memo used to grow without bound, pinning every distinct run's
// full Results forever — a real leak for a long-lived daemon. In-flight
// entries are not on the list and therefore can never be evicted; eviction
// only unlinks an entry from the map, so waiters holding the entry pointer
// are never broken — an evicted key simply re-simulates on next lookup, and
// determinism makes the re-run byte-identical.
var runMemo struct {
	sync.Mutex
	m   map[memoKey]*memoEntry
	lru *list.List // completed entries only; front = most recently used
	cap int        // 0 = DefaultRunMemoCapacity; set via SetRunMemoCapacity
	// Campaign-level counters (see RunMemoStats). A hit is a lookup that
	// found an entry, completed or in flight; a miss starts a simulation.
	hits, misses, evictions uint64
}

// DefaultRunMemoCapacity bounds the completed-run memo when
// SetRunMemoCapacity was never called. Sized for campaign reuse (every
// figure of the paper's evaluation fits with room to spare) while keeping a
// long-lived daemon's footprint bounded: a full Results bundle is a few
// hundred KB at 256 cores.
const DefaultRunMemoCapacity = 512

// SetRunMemoCapacity bounds the number of completed runs the campaign memo
// retains (least-recently-used eviction; in-flight runs are pinned and never
// count against the bound). n <= 0 restores DefaultRunMemoCapacity. It
// returns the previous bound. Shrinking evicts immediately.
func SetRunMemoCapacity(n int) int {
	runMemo.Lock()
	defer runMemo.Unlock()
	prev := runMemo.cap
	if prev == 0 {
		prev = DefaultRunMemoCapacity
	}
	if n <= 0 {
		n = DefaultRunMemoCapacity
	}
	runMemo.cap = n
	evictLocked()
	return prev
}

// MemoStats is the campaign memo's observability snapshot (see /metrics in
// the simd service).
type MemoStats struct {
	// Hits counts lookups that found an entry — completed or joined in
	// flight; Misses counts lookups that started a simulation. Evictions
	// counts completed entries dropped by the LRU bound.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries is the completed-entry count; InFlight the pinned running runs.
	Entries  int `json:"entries"`
	InFlight int `json:"in_flight"`
}

// RunMemoStats returns the campaign memo's counters. ClearRunMemo resets
// them.
func RunMemoStats() MemoStats {
	runMemo.Lock()
	defer runMemo.Unlock()
	s := MemoStats{Hits: runMemo.hits, Misses: runMemo.misses, Evictions: runMemo.evictions}
	if runMemo.lru != nil {
		s.Entries = runMemo.lru.Len()
	}
	s.InFlight = len(runMemo.m) - s.Entries
	return s
}

// evictLocked drops least-recently-used completed entries until the memo is
// within its bound. In-flight entries are not on the list, so a running
// simulation — and every waiter parked on it — is immune.
func evictLocked() {
	if runMemo.lru == nil {
		return
	}
	max := runMemo.cap
	if max == 0 {
		max = DefaultRunMemoCapacity
	}
	for runMemo.lru.Len() > max {
		back := runMemo.lru.Back()
		old := back.Value.(*memoEntry)
		runMemo.lru.Remove(back)
		old.elem = nil
		delete(runMemo.m, old.key)
		runMemo.evictions++
	}
}

// memoKey identifies a run. The fields are kept separate (instead of one
// joined string) so no formatting artifact can alias two different runs —
// notably, workload and scale stay distinct from the config text. The
// fault-plan pointer is dereferenced into the key: formatting the pointer
// itself would make the key an unstable address and alias all plans.
type memoKey struct {
	cfg      string
	faults   string
	workload string
	// params is the workload's canonical parameter signature: two collective
	// variants share a Name but must never share a cached run.
	params string
	scale  Scale
	// snap is the content hash of the snapshot a warm-started run forked
	// from, 0 for cold runs. A warm fork's results legitimately differ from
	// the same configuration's cold results (the warm-up executed under the
	// donor's tuning knobs), so the two must never share a memo entry; the
	// content hash also separates forks of different donors or barriers.
	snap uint64
}

func newMemoKey(cfg Config, wl Workload, sc Scale) memoKey {
	faults := ""
	if cfg.Faults != nil {
		faults = fmt.Sprintf("%+v", *cfg.Faults)
	}
	cfg.Faults = nil
	return memoKey{cfg: fmt.Sprintf("%+v", cfg), faults: faults, workload: wl.Name, params: wl.Params, scale: sc}
}

// memoEntry is one in-flight or completed run; done closes when res/err are
// final.
type memoEntry struct {
	key  memoKey
	done chan struct{}
	res  Results
	err  error
	// refs counts waiters interested in an in-flight run and cancel aborts
	// it (both guarded by the runMemo mutex; cancel is nil once the run
	// settles). The simulation executes under its own context, detached from
	// any single waiter: a canceled request only stops the machine loop when
	// it was the LAST waiter — concurrent identical requests neither kill
	// each other's shared run nor keep a run alive after everyone left.
	refs   int
	cancel context.CancelFunc
	// elem is the entry's LRU position; nil while in flight (pinned — an
	// in-flight entry can never be evicted) and again after eviction.
	elem *list.Element
}

// ClearRunMemo empties the campaign-level run memo and resets its counters
// (tests). In-flight runs complete normally and release their waiters; their
// entries are simply no longer found by later lookups.
func ClearRunMemo() {
	runMemo.Lock()
	runMemo.m = nil
	runMemo.lru = nil
	runMemo.hits, runMemo.misses, runMemo.evictions = 0, 0, 0
	runMemo.Unlock()
}

// memoizedRun returns the cached Results for an identical earlier run, or
// simulates and caches. Concurrent callers with the same key share one
// simulation. Failed runs are not cached: the entry is dropped before its
// waiters are released, so a later retry re-simulates.
func memoizedRun(ctx context.Context, cfg Config, wl Workload, sc Scale) (Results, bool, error) {
	return memoized(ctx, newMemoKey(cfg, wl, sc), func(runCtx context.Context) (Results, error) {
		return RunWorkloadCtx(runCtx, cfg, wl, sc)
	})
}

// memoizedWarmRun is memoizedRun for a run forked from a warmed snapshot:
// the key carries the snapshot's content hash, so warm and cold runs of the
// same configuration occupy distinct entries.
func memoizedWarmRun(ctx context.Context, cfg Config, wl Workload, sc Scale, snap []byte) (Results, bool, error) {
	key := newMemoKey(cfg, wl, sc)
	key.snap = SnapshotHash(snap)
	return memoized(ctx, key, func(runCtx context.Context) (Results, error) {
		m, err := RestoreMachine(snap, cfg, wl, sc)
		if err != nil {
			return Results{}, err
		}
		return m.FinishCtx(runCtx)
	})
}

// memoized runs the singleflight-and-cache protocol for one key. The hit
// return is true when the lookup found an existing entry (completed, or
// joined in flight). The simulation executes on its own goroutine under a
// context detached from any individual caller; every caller — the one that
// started the run included — waits on the entry or on its own ctx, whichever
// fires first, so a canceled caller returns promptly while the run keeps
// going for the remaining waiters and is aborted only when the last one
// abandons it.
func memoized(ctx context.Context, key memoKey, run func(context.Context) (Results, error)) (Results, bool, error) {
	runMemo.Lock()
	if runMemo.m == nil {
		runMemo.m = make(map[memoKey]*memoEntry)
		runMemo.lru = list.New()
	}
	if e, ok := runMemo.m[key]; ok {
		runMemo.hits++
		if e.elem != nil {
			// Completed: res/err are final (published under this mutex).
			runMemo.lru.MoveToFront(e.elem)
			runMemo.Unlock()
			return e.res, true, e.err
		}
		e.refs++
		runMemo.Unlock()
		return waitMemo(ctx, e, true)
	}
	runMemo.misses++
	// The run's context carries the first caller's values but not its
	// cancellation: it is canceled when the last interested waiter leaves,
	// not when any one of them does.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	e := &memoEntry{key: key, done: make(chan struct{}), refs: 1, cancel: cancel}
	runMemo.m[key] = e
	runMemo.Unlock()
	go func() {
		res, err := run(runCtx)
		cancel() // release the context's resources; res/err are already final
		runMemo.Lock()
		e.res, e.err = res, err
		e.cancel = nil
		if runMemo.m[key] == e { // may have been cleared mid-flight
			if err != nil {
				delete(runMemo.m, key)
			} else {
				e.elem = runMemo.lru.PushFront(e)
				evictLocked()
			}
		}
		close(e.done)
		runMemo.Unlock()
	}()
	return waitMemo(ctx, e, false)
}

// waitMemo parks one caller on an in-flight entry. A caller whose own
// context fires first drops its reference — the last to leave cancels the
// run — and returns a wrapped ErrCanceled without waiting for the machine
// loop to notice.
func waitMemo(ctx context.Context, e *memoEntry, hit bool) (Results, bool, error) {
	select {
	case <-e.done:
		return e.res, hit, e.err
	case <-ctx.Done():
		runMemo.Lock()
		e.refs--
		if e.refs == 0 && e.cancel != nil {
			e.cancel()
		}
		runMemo.Unlock()
		return Results{}, hit, fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx))
	}
}

// CampaignRun is the simd service's run entry point: a memoized,
// cancellation-aware simulation. Identical concurrent calls share one
// simulation (singleflight through the campaign memo); the hit return is
// true when the call was served from the memo — completed, or joined in
// flight. A canceled ctx returns promptly with a wrapped ErrCanceled, and
// the underlying simulation is aborted only when the last caller interested
// in it has gone.
func CampaignRun(ctx context.Context, cfg Config, wl Workload, sc Scale) (Results, bool, error) {
	return memoizedRun(ctx, cfg, wl, sc)
}

// CampaignWarmRun is CampaignRun for a run forked from a warm-start snapshot
// donor; the memo identity carries the snapshot's content hash so warm and
// cold runs of one configuration never alias.
func CampaignWarmRun(ctx context.Context, cfg Config, wl Workload, sc Scale, snap []byte) (Results, bool, error) {
	return memoizedWarmRun(ctx, cfg, wl, sc, snap)
}

// RunIdentity returns the run's deterministic cache identity: the hex FNV-1a
// of the campaign memo key (configuration, fault plan, workload and its
// parameters, scale, and — when snap is non-empty — the warm-start donor's
// content hash). Two runs with equal identities return byte-identical
// Results; the simd service uses it as the run ID and response-cache key.
func RunIdentity(cfg Config, wl Workload, sc Scale, snap []byte) string {
	key := newMemoKey(cfg, wl, sc)
	if len(snap) > 0 {
		key.snap = SnapshotHash(snap)
	}
	h := fnv.New64a()
	for _, part := range []string{key.cfg, key.faults, key.workload, key.params} {
		io.WriteString(h, part)
		h.Write([]byte{0}) // separator: no formatting artifact may alias parts
	}
	var tail [9]byte
	tail[0] = byte(key.scale)
	for i := 0; i < 8; i++ {
		tail[1+i] = byte(key.snap >> (8 * i))
	}
	h.Write(tail[:])
	return fmt.Sprintf("%016x", h.Sum64())
}

// matrix runs every (scheme, workload) pair concurrently, with cfgFor
// producing the per-scheme configuration, and returns results keyed by
// scheme then workload. A fired ctx stops the campaign: queued pairs drain
// unrun and in-flight simulations are abandoned (aborted outright unless
// another campaign still waits on them), surfacing as a wrapped ErrCanceled.
func matrix(ctx context.Context, o ExpOptions, cfgFor func(Scheme) Config, schemes []Scheme, wls []Workload) (map[runKey]Results, error) {
	type job struct {
		sch Scheme
		wl  Workload
	}
	var jobs []job
	for _, sch := range schemes {
		for _, wl := range wls {
			jobs = append(jobs, job{sch, wl})
		}
	}
	results := make(map[runKey]Results, len(jobs))
	var (
		mu     sync.Mutex
		errs   []error
		seen   map[string]bool
		failed bool
	)
	// fail records an error, deduplicating repeats: a broken configuration
	// tends to sink every pair the same way, and one copy per distinct cause
	// reads better than len(jobs) copies of the same message.
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		failed = true
		if seen == nil {
			seen = make(map[string]bool)
		}
		if msg := err.Error(); !seen[msg] {
			seen[msg] = true
			errs = append(errs, err)
		}
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return failed
	}
	// A fixed pool of o.Parallelism workers pulls jobs off a channel: at most
	// that many simulations (and goroutines) exist at once, instead of one
	// goroutine per matrix cell parked on a semaphore.
	workers := o.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobsCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobsCh {
				if stopped() || ctx.Err() != nil {
					continue // a simulation already failed or the campaign was canceled; drain the queue
				}
				res, _, err := memoizedRun(ctx, cfgFor(j.sch), j.wl, o.Scale)
				if err != nil {
					fail(fmt.Errorf("%s/%s: %w", j.sch.Name, j.wl.Name, err))
					continue
				}
				mu.Lock()
				results[runKey{j.sch.Name, j.wl.Name}] = res
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobsCh <- j
	}
	close(jobsCh)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return results, nil
}

// WarmStartSweep forks a tuning-knob sweep from one warmed checkpoint. The
// base configuration runs alone to the barrier cycle and snapshots; every
// variant configuration then restores from that snapshot and runs to
// completion over the harness's bounded worker pool, so the sweep pays the
// warm-up phase once instead of len(variants) times. Results are returned in
// variant order, alongside the snapshot itself (its SnapshotHash is each
// warm run's memo identity).
//
// Variants must differ from base only in warm-start tuning knobs
// (TPCThreshold, TimeWindow, KnobRatioShift, CoalesceWindow, retry timers) —
// the snapshot's fork fingerprint enforces this, refusing anything else with
// ErrSnapshotMismatch. A variant identical to base is an exact resume,
// byte-identical to its cold run; any other variant is an approximation in
// exactly one sense: its pre-barrier history executed under base's knob
// values.
func WarmStartSweep(ctx context.Context, o ExpOptions, base Config, variants []Config, wl Workload, barrier uint64) ([]Results, []byte, error) {
	o = o.withDefaults()
	m, err := NewMachine(base, wl, o.Scale)
	if err != nil {
		return nil, nil, err
	}
	if err := m.RunToCtx(ctx, barrier); err != nil {
		return nil, nil, err
	}
	snap, err := m.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	results := make([]Results, len(variants))
	workers := o.Parallelism
	if workers > len(variants) {
		workers = len(variants)
	}
	idxCh := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, _, err := memoizedWarmRun(ctx, variants[i], wl, o.Scale, snap)
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("warm fork %d: %w", i, err))
					mu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range variants {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	return results, snap, nil
}

// speedup returns baseline-cycles / scheme-cycles. A zero cycle count on
// either side marks a broken run; it is reported as an error instead of
// silently producing a 0 (or Inf) that would poison campaign geomeans.
func speedup(base, scheme Results) (float64, error) {
	if base.Cycles == 0 || scheme.Cycles == 0 {
		return 0, fmt.Errorf("speedup %s/%s: zero cycle count (base %s=%d, scheme %s=%d)",
			scheme.Scheme, scheme.Workload, base.Scheme, base.Cycles, scheme.Scheme, scheme.Cycles)
	}
	return float64(base.Cycles) / float64(scheme.Cycles), nil
}

// geomean returns the geometric mean of the values. An empty slice or any
// non-positive or non-finite value is an error: a single poisoned input
// (0 from a broken run, NaN/Inf from a bad ratio) would otherwise corrupt
// the campaign summary silently.
func geomean(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, errors.New("geomean of no values")
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("geomean: non-positive or non-finite input %v in %v", v, vals)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals))), nil
}

// Quantile returns the q-quantile (0..1) of sorted samples, linearly
// interpolating between the two nearest ranks and rounding to the nearest
// integer. Truncating to the lower rank instead would bias high quantiles
// (P99 on a handful of samples) toward the smaller neighbour. Exported for
// the simd service's per-tenant wait-time quantiles; the experiment figures
// use it for the paper's gap distributions.
func Quantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	// Clamp the quantile to [0, 1]; a NaN q (e.g. 0/0 from an upstream
	// ratio) would otherwise flow through int(NaN), whose value is
	// platform-dependent.
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo < 0 {
		return sorted[0]
	}
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	a, b := float64(sorted[lo]), float64(sorted[lo+1])
	return uint64(a + (b-a)*frac + 0.5)
}

func sortU64(v []uint64) []uint64 {
	out := append([]uint64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
